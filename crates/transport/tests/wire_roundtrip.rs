//! Round-trip properties for the wire codecs (`transport::wire_bytes`).
//!
//! The live backend trusts `decode_packet` to be a right inverse of
//! `encode_packet`: every frame the engines emit must parse back into
//! values that re-encode to the same bytes. The properties here pin that
//! idempotence — `encode(decode(encode(x))) == encode(x)` — over random
//! SCTP chunk sequences and TCP segments, deliberately including values the
//! wire narrows (u64 tags, oversized windows, heartbeat nonces): the
//! narrowing must be *stable*, never lossy twice.
//!
//! Field-exact round-trips for wire-representable values, and the
//! corrupted-CRC reject path, ride along.

use bytes::Bytes;
use netsim::IfAddr;
use proptest::prelude::*;
use transport::ip::{Packet, Proto};
use transport::sctp::{Chunk, Cookie, DataChunk, IDataChunk, SctpPacket};
use transport::tcp::{Flags, TcpSegment};
use transport::wire_bytes::{decode_packet, encode_packet, DecodeError};

fn arb_cookie() -> impl Strategy<Value = Cookie> {
    (
        (any::<u16>(), any::<u16>(), any::<u16>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u16>(), any::<u16>()),
        (any::<u64>(), any::<u64>(), 0u8..4),
    )
        .prop_map(|((ph, pp, lp, pt, lt), (rw, ptsn, mtsn, os, is), (at, mac, ext))| Cookie {
            peer_host: ph,
            peer_port: pp,
            local_port: lp,
            peer_tag: pt,
            local_tag: lt,
            peer_rwnd: rw,
            peer_init_tsn: ptsn,
            my_init_tsn: mtsn,
            out_streams: os,
            in_streams: is,
            created_at: simcore::SimTime::from_nanos(at),
            ext_flags: ext,
            mac,
        })
}

fn arb_idata_chunk() -> impl Strategy<Value = Chunk> {
    (
        (0u64..u32::MAX as u64, any::<u16>(), 0u64..u32::MAX as u64, any::<u32>()),
        (any::<bool>(), any::<bool>()),
        prop::collection::vec(any::<u8>(), 0..1400),
    )
        .prop_map(|((tsn, stream, mid, slot), (end, unordered), data)| {
            // Model the wire-representable shapes: a B fragment carries the
            // PPID (FSN is 0 by definition); a non-B fragment carries the
            // FSN (PPID rides on the B fragment).
            let begin = slot % 2 == 0;
            Chunk::IData(IDataChunk {
                tsn,
                stream,
                mid,
                fsn: if begin { 0 } else { slot },
                ppid: if begin { slot } else { 0 },
                begin,
                end,
                unordered,
                data: Bytes::from(data),
            })
        })
}

fn arb_forward_tsn() -> impl Strategy<Value = Chunk> {
    (0u64..u32::MAX as u64, prop::collection::vec((any::<u16>(), 0u64..u32::MAX as u64), 0..6))
        .prop_map(|(new_cum, skips)| Chunk::ForwardTsn { new_cum, skips })
}

fn arb_data_chunk() -> impl Strategy<Value = Chunk> {
    (
        (0u64..u32::MAX as u64, any::<u16>(), 0u32..u16::MAX as u32, any::<u32>()),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        prop::collection::vec(any::<u8>(), 0..1400),
    )
        .prop_map(|((tsn, stream, ssn, ppid), (begin, end, unordered), data)| {
            Chunk::Data(DataChunk {
                tsn,
                stream,
                ssn,
                begin,
                end,
                unordered,
                ppid,
                data: Bytes::from(data),
            })
        })
}

fn arb_sack() -> impl Strategy<Value = Chunk> {
    (
        0u64..1_000_000,
        any::<u64>(),
        prop::collection::vec((1u64..60_000, 1u64..1_000), 0..8),
        any::<u32>(),
    )
        .prop_map(|(cum_tsn, a_rwnd, rel, dup_count)| Chunk::Sack {
            cum_tsn,
            a_rwnd,
            gaps: rel.into_iter().map(|(s, l)| (cum_tsn + s, cum_tsn + s + l)).collect(),
            dup_count,
        })
}

fn arb_chunk() -> impl Strategy<Value = Chunk> {
    prop_oneof![
        arb_data_chunk(),
        arb_sack(),
        arb_idata_chunk(),
        arb_forward_tsn(),
        (any::<u64>(), any::<u64>(), any::<u16>(), any::<u16>(), 0u64..u32::MAX as u64, 0u8..4)
            .prop_map(|(init_tag, a_rwnd, out_streams, in_streams, init_tsn, ext_flags)| {
                Chunk::Init { init_tag, a_rwnd, out_streams, in_streams, init_tsn, ext_flags }
            }),
        (
            (any::<u64>(), any::<u64>(), any::<u16>(), any::<u16>(), any::<u64>(), 0u8..4),
            arb_cookie()
        )
            .prop_map(
                |((init_tag, a_rwnd, out_streams, in_streams, init_tsn, ext_flags), cookie)| {
                    Chunk::InitAck {
                        init_tag,
                        a_rwnd,
                        out_streams,
                        in_streams,
                        init_tsn,
                        ext_flags,
                        cookie,
                    }
                }
            ),
        arb_cookie().prop_map(|cookie| Chunk::CookieEcho { cookie }),
        Just(Chunk::CookieAck),
        (0u8..3, any::<u64>()).prop_map(|(path, nonce)| Chunk::Heartbeat { path, nonce }),
        (0u8..3, any::<u64>()).prop_map(|(path, nonce)| Chunk::HeartbeatAck { path, nonce }),
        any::<u64>().prop_map(|cum_tsn| Chunk::Shutdown { cum_tsn }),
        Just(Chunk::ShutdownAck),
        Just(Chunk::ShutdownComplete),
        Just(Chunk::Abort),
    ]
}

fn arb_sctp_packet() -> impl Strategy<Value = Packet> {
    (
        (0u16..512, 0u8..3, 0u16..512, 0u8..3),
        (any::<u16>(), any::<u16>(), any::<u64>()),
        prop::collection::vec(arb_chunk(), 1..6),
    )
        .prop_map(|((sh, si, dh, di), (sp, dp, vtag), chunks)| Packet {
            src: IfAddr::new(sh, si),
            dst: IfAddr::new(dh, di),
            body: Proto::Sctp(SctpPacket { src_port: sp, dst_port: dp, vtag, chunks }),
        })
}

fn arb_tcp_packet() -> impl Strategy<Value = Packet> {
    (
        (0u16..512, 0u16..512, any::<u16>(), any::<u16>()),
        prop_oneof![
            Just(Flags::SYN),
            Just(Flags::SYN | Flags::ACK),
            Just(Flags::ACK),
            Just(Flags::FIN | Flags::ACK),
            Just(Flags::RST),
        ],
        (any::<u64>(), any::<u64>(), any::<u64>()),
        prop::collection::vec((1u64..1_000_000, 1u64..10_000), 0..4),
        prop::collection::vec(any::<u8>(), 0..3000),
        1usize..4,
    )
        .prop_map(|((sh, dh, sp, dp), flags, (seq, ack, wnd), mut sack, data, nslices)| {
            // A SYN never carries SACK blocks (the engines agree): with the
            // MSS option aboard, 3 blocks would blow the 60-byte header cap.
            if flags.contains(Flags::SYN) {
                sack.clear();
            }
            // Split the payload into 1..4 zero-copy slices: the wire merges
            // them, and the re-encode must not care.
            let payload_len = data.len() as u32;
            let mut payload = Vec::new();
            let step = (data.len() / nslices).max(1);
            let mut rest = Bytes::from(data);
            while rest.len() > step {
                payload.push(rest.slice(0..step));
                rest = rest.slice(step..rest.len());
            }
            if !rest.is_empty() {
                payload.push(rest);
            }
            Packet {
                src: IfAddr::new(sh, 0),
                dst: IfAddr::new(dh, 0),
                body: Proto::Tcp(TcpSegment {
                    src_port: sp,
                    dst_port: dp,
                    flags,
                    seq,
                    ack,
                    wnd,
                    sack: sack.into_iter().map(|(s, l)| (s, s + l)).collect(),
                    probe: false,
                    payload,
                    payload_len,
                }),
            }
        })
}

proptest! {
    #[test]
    fn sctp_decode_then_reencode_is_byte_identical(pkt in arb_sctp_packet(), now in any::<u64>()) {
        let frame = encode_packet(&pkt, now);
        let decoded = decode_packet(&frame).expect("own frames must decode");
        prop_assert_eq!(encode_packet(&decoded, now), frame);
    }

    #[test]
    fn tcp_decode_then_reencode_is_byte_identical(pkt in arb_tcp_packet(), now in 0u64..u32::MAX as u64) {
        let frame = encode_packet(&pkt, now);
        let decoded = decode_packet(&frame).expect("own frames must decode");
        prop_assert_eq!(encode_packet(&decoded, now), frame);
    }

    #[test]
    fn wire_safe_sctp_fields_round_trip_exactly(
        tsn in 0u64..u32::MAX as u64,
        stream in any::<u16>(),
        ssn in 0u32..u16::MAX as u32,
        ppid in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..1400),
        cum in 0u64..1_000_000,
        rel in prop::collection::vec((1u64..60_000, 1u64..1_000), 0..8),
    ) {
        let gaps: Vec<(u64, u64)> =
            rel.into_iter().map(|(s, l)| (cum + s, cum + s + l)).collect();
        let pkt = Packet {
            src: IfAddr::new(0, 0),
            dst: IfAddr::new(1, 0),
            body: Proto::Sctp(SctpPacket {
                src_port: 7,
                dst_port: 8,
                vtag: 0x1234_5678,
                chunks: vec![
                    Chunk::Data(DataChunk {
                        tsn,
                        stream,
                        ssn,
                        begin: true,
                        end: true,
                        unordered: false,
                        ppid,
                        data: Bytes::from(data.clone()),
                    }),
                    Chunk::Sack { cum_tsn: cum, a_rwnd: 220 * 1024, gaps: gaps.clone(), dup_count: 0 },
                ],
            }),
        };
        let decoded = decode_packet(&encode_packet(&pkt, 0)).unwrap();
        let Proto::Sctp(p) = &decoded.body else { panic!("proto flipped") };
        let Chunk::Data(d) = &p.chunks[0] else { panic!("DATA first") };
        prop_assert_eq!((d.tsn, d.stream, d.ssn, d.ppid), (tsn, stream, ssn, ppid));
        prop_assert_eq!(&d.data[..], &data[..]);
        let Chunk::Sack { cum_tsn, gaps: got, .. } = &p.chunks[1] else { panic!("SACK second") };
        prop_assert_eq!(*cum_tsn, cum);
        prop_assert_eq!(got, &gaps);
    }

    #[test]
    fn cookies_round_trip_with_mac_intact(cookie in arb_cookie(), secret in any::<u64>()) {
        // The cookie serializes full-width, so a decoded cookie must still
        // verify under the secret that signed it — the live four-way
        // handshake depends on exactly this.
        let signed = cookie.sign(secret);
        let pkt = Packet {
            src: IfAddr::new(0, 0),
            dst: IfAddr::new(1, 0),
            body: Proto::Sctp(SctpPacket {
                src_port: 1,
                dst_port: 2,
                vtag: 99,
                chunks: vec![Chunk::CookieEcho { cookie: signed }],
            }),
        };
        let decoded = decode_packet(&encode_packet(&pkt, 0)).unwrap();
        let Proto::Sctp(p) = &decoded.body else { panic!("proto flipped") };
        let Chunk::CookieEcho { cookie: got } = &p.chunks[0] else { panic!("cookie echo") };
        prop_assert_eq!(*got, signed);
        prop_assert!(got.verify(secret));
        prop_assert!(!got.verify(secret ^ 1));
    }

    #[test]
    fn any_single_byte_corruption_in_the_sctp_body_is_rejected(
        pkt in arb_sctp_packet(),
        pick in any::<u64>(),
        bit in 0u32..8,
    ) {
        let mut frame = encode_packet(&pkt, 0);
        // Corrupt one byte anywhere in the SCTP region (past the IP
        // header); the CRC32c gate must reject before any chunk parsing.
        let body = frame.len() - 20;
        let at = 20 + (pick as usize % body);
        frame[at] ^= 1 << bit;
        match decode_packet(&frame) {
            Err(DecodeError::BadCrc(stored, computed)) => prop_assert_ne!(stored, computed),
            other => prop_assert!(false, "corruption at byte {} must fail CRC, got {:?}", at, other),
        }
    }
}
