//! Synthetic kernels reproducing the *communication patterns* of the seven
//! NAS Parallel Benchmarks the paper runs (NPB 3.2, class B, 8 processes;
//! §4.1.2 / Figure 9).
//!
//! Substitution note (DESIGN.md): the real NPB codes are Fortran numerics;
//! what drives Figure 9 is their communication structure — message sizes,
//! partner topology, collective mix — and the compute/communication ratio.
//! Each kernel here reproduces that structure, with computation modelled
//! as simulated time and a nominal total operation count so results are
//! reported in Mop/s like the paper. The paper's own analysis is encoded
//! here: datasets `S`/`W` are short-message dominated, `A`/`B` shift toward
//! long messages, and **MG and BT keep a greater proportion of short
//! messages even in class B** — which is why TCP keeps a slight edge on
//! exactly those two benchmarks.
//!
//! Operation counts are nominal (order-of-magnitude NPB class B); only the
//! TCP-vs-SCTP *ratio* per kernel is meaningful, exactly as in the paper.

use bytes::Bytes;
use mpi_core::{mpirun, Mpi, MpiCfg, ReduceOp};
use simcore::Dur;

use crate::zeros;

/// The seven benchmarks the paper runs (FT is skipped there too — it did
/// not compile with mpif77).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    LU,
    SP,
    EP,
    CG,
    BT,
    MG,
    IS,
}

impl Kernel {
    pub const ALL: [Kernel; 7] = [
        Kernel::LU,
        Kernel::SP,
        Kernel::EP,
        Kernel::CG,
        Kernel::BT,
        Kernel::MG,
        Kernel::IS,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Kernel::LU => "LU",
            Kernel::SP => "SP",
            Kernel::EP => "EP",
            Kernel::CG => "CG",
            Kernel::BT => "BT",
            Kernel::MG => "MG",
            Kernel::IS => "IS",
        }
    }

    /// Nominal total operation count (Mop) for the class, used only to
    /// express results in Mop/s.
    fn mops(self, class: Class) -> f64 {
        let b = match self {
            Kernel::LU => 54_000.0,
            Kernel::SP => 44_000.0,
            Kernel::EP => 2_100.0,
            Kernel::CG => 55_000.0,
            Kernel::BT => 15_000.0,
            Kernel::MG => 7_000.0,
            Kernel::IS => 1_000.0,
        };
        b * class.scale()
    }
}

/// Dataset class. The paper sweeps S, W, A, B; messages grow with class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    S,
    W,
    A,
    B,
}

impl Class {
    pub fn name(self) -> &'static str {
        match self {
            Class::S => "S",
            Class::W => "W",
            Class::A => "A",
            Class::B => "B",
        }
    }

    /// Work scale relative to class B.
    fn scale(self) -> f64 {
        match self {
            Class::S => 0.002,
            Class::W => 0.02,
            Class::A => 0.25,
            Class::B => 1.0,
        }
    }

    /// Message-size scale relative to class B (sizes shrink with the
    /// dataset; S/W are short-message dominated — §4.1.2).
    fn msg_scale(self) -> f64 {
        match self {
            Class::S => 1.0 / 32.0,
            Class::W => 1.0 / 12.0,
            Class::A => 0.5,
            Class::B => 1.0,
        }
    }

    /// Iteration-count scale (sublinear: bigger classes mostly grow
    /// per-iteration work).
    fn iter_scale(self) -> f64 {
        match self {
            Class::S => 0.12,
            Class::W => 0.25,
            Class::A => 0.6,
            Class::B => 1.0,
        }
    }
}

/// One benchmark result, in the paper's metric.
#[derive(Debug, Clone, Copy)]
pub struct NasResult {
    pub kernel: Kernel,
    pub class: Class,
    pub secs: f64,
    pub mops_total: f64,
    pub mops_per_sec: f64,
    /// Simulator events fired during the run (self-metering, see
    /// `bench-harness`).
    pub events: u64,
    /// Runtime driver↔process handoffs performed (self-metering).
    pub handoffs: u64,
    /// Wakes coalesced away by the runtime fast path (self-metering).
    pub wakes_coalesced: u64,
    /// Packet trains emitted through the burst path (self-metering).
    pub bursts_total: u64,
    /// Packets fused inside those trains (self-metering).
    pub pkts_fused: u64,
    /// Timers that took the O(1) wheel insert (self-metering).
    pub wheel_hits: u64,
    /// Timers beyond the wheel horizon (heap fallback; self-metering).
    pub heap_falls: u64,
}

/// Run one kernel at one class.
pub fn run(mpi_cfg: MpiCfg, kernel: Kernel, class: Class) -> NasResult {
    let report = mpirun(mpi_cfg, move |mpi| {
        dispatch(mpi, kernel, class);
    });
    let secs = report.secs();
    let mops_total = kernel.mops(class);
    NasResult {
        kernel,
        class,
        secs,
        mops_total,
        mops_per_sec: mops_total / secs,
        events: report.events,
        handoffs: report.handoffs,
        wakes_coalesced: report.wakes_coalesced,
        bursts_total: report.bursts_total,
        pkts_fused: report.pkts_fused,
        wheel_hits: report.wheel_hits,
        heap_falls: report.heap_falls,
    }
}

fn dispatch(mpi: &mut Mpi, kernel: Kernel, class: Class) {
    match kernel {
        Kernel::LU => lu(mpi, class),
        Kernel::SP => sp(mpi, class),
        Kernel::EP => ep(mpi, class),
        Kernel::CG => cg(mpi, class),
        Kernel::BT => bt(mpi, class),
        Kernel::MG => mg(mpi, class),
        Kernel::IS => is(mpi, class),
    }
}

fn iters(base: u32, class: Class) -> u32 {
    ((base as f64 * class.iter_scale()).round() as u32).max(2)
}

fn msg(base: usize, class: Class) -> usize {
    ((base as f64 * class.msg_scale()) as usize).max(64)
}

/// Blocking pairwise exchange (sendrecv) used by the grid kernels.
fn exchange(mpi: &mut Mpi, partner: u16, tag: i32, bytes: usize) {
    let s = mpi.isend(partner, tag, zeros(bytes));
    let r = mpi.irecv(Some(partner), Some(tag));
    mpi.waitall(&[s, r]);
}

/// Process-grid helpers: 4×2 for 8 ranks, degrading to a line.
fn grid(rank: u16, n: u16) -> (i32, i32, i32, i32) {
    let cols = if n >= 8 { 4 } else { n as i32 };
    let rows = ((n as i32) / cols).max(1);
    (rank as i32 % cols, rank as i32 / cols, cols, rows)
}

fn at(col: i32, row: i32, cols: i32) -> u16 {
    (row * cols + col) as u16
}

/// **LU** — wavefront (pipelined SSOR): many *small* messages along the
/// 2D process grid, two sweeps per iteration.
fn lu(mpi: &mut Mpi, class: Class) {
    let n = mpi.size();
    let me = mpi.rank();
    let (col, row, cols, rows) = grid(me, n);
    let niter = iters(60, class);
    let m = msg(4096, class);
    // Per-sweep compute per rank; the wavefront pipeline multiplies the
    // critical path ~5x, so this is sized for class B totals ≈ 12 s.
    let sweep_compute = Dur::from_secs_f64(2.4 * class.scale() / (2.0 * niter as f64));
    for it in 0..niter {
        let tag = (it as i32) << 2;
        // Forward sweep: wait on north/west, compute, send south/east.
        if col > 0 {
            let _ = mpi.recv(Some(at(col - 1, row, cols)), Some(tag));
        }
        if row > 0 {
            let _ = mpi.recv(Some(at(col, row - 1, cols)), Some(tag));
        }
        mpi.compute(sweep_compute);
        if col + 1 < cols {
            mpi.send(at(col + 1, row, cols), tag, zeros(m));
        }
        if row + 1 < rows {
            mpi.send(at(col, row + 1, cols), tag, zeros(m));
        }
        // Backward sweep.
        let tag = tag | 1;
        if col + 1 < cols {
            let _ = mpi.recv(Some(at(col + 1, row, cols)), Some(tag));
        }
        if row + 1 < rows {
            let _ = mpi.recv(Some(at(col, row + 1, cols)), Some(tag));
        }
        mpi.compute(sweep_compute);
        if col > 0 {
            mpi.send(at(col - 1, row, cols), tag, zeros(m));
        }
        if row > 0 {
            mpi.send(at(col, row - 1, cols), tag, zeros(m));
        }
    }
    let _ = mpi.allreduce(ReduceOp::Sum, &[1.0; 5]); // residual norms
}

/// **SP** — scalar-pentadiagonal ADI: large face exchanges in three
/// directions per iteration (long messages in class B).
fn sp(mpi: &mut Mpi, class: Class) {
    let n = mpi.size();
    let me = mpi.rank();
    let niter = iters(100, class);
    let m = msg(100 * 1024, class);
    let per_iter = Dur::from_secs_f64(10.0 * class.scale() / niter as f64);
    for it in 0..niter {
        for dir in 0..3u16 {
            let shift = 1 + dir;
            let to = (me + shift) % n;
            let from = (me + n - shift) % n;
            let tag = ((it as i32) << 4) | dir as i32;
            let s = mpi.isend(to, tag, zeros(m));
            let r = mpi.irecv(Some(from), Some(tag));
            mpi.compute(per_iter / 3);
            mpi.waitall(&[s, r]);
        }
    }
    let _ = mpi.allreduce(ReduceOp::Sum, &[1.0; 5]);
}

/// **EP** — embarrassingly parallel: almost pure compute, tiny reductions
/// at the end.
fn ep(mpi: &mut Mpi, class: Class) {
    mpi.compute(Dur::from_secs_f64(10.0 * class.scale()));
    for _ in 0..3 {
        let _ = mpi.allreduce(ReduceOp::Sum, &[1.0; 10]);
    }
}

/// **CG** — conjugate gradient: transpose-partner exchanges of long
/// vectors plus a tiny dot-product allreduce every inner iteration.
fn cg(mpi: &mut Mpi, class: Class) {
    let n = mpi.size();
    let me = mpi.rank();
    let outer = iters(15, class);
    let inner = 25;
    let m = msg(120 * 1024, class);
    let per_inner = Dur::from_secs_f64(40.0 * class.scale() / (outer as f64 * inner as f64));
    // Transpose partner: reflect across half the machine.
    let partner = me ^ (n / 2).max(1);
    for _o in 0..outer {
        for i in 0..inner {
            if partner < n && partner != me {
                exchange(mpi, partner, i, m);
            }
            mpi.compute(per_inner);
            let _ = mpi.allreduce(ReduceOp::Sum, &[1.0]);
        }
    }
}

/// **BT** — block-tridiagonal ADI. The paper notes BT keeps a greater
/// proportion of *short* messages even in class B: faces move as several
/// sub-block messages below the eager limit.
fn bt(mpi: &mut Mpi, class: Class) {
    let n = mpi.size();
    let me = mpi.rank();
    let niter = iters(60, class);
    let m = msg(15 * 1024, class); // short (< 64 KB eager limit) in class B
    let per_iter = Dur::from_secs_f64(4.0 * class.scale() / niter as f64);
    for it in 0..niter {
        for dir in 0..3u16 {
            let shift = 1 + dir;
            let to = (me + shift) % n;
            let from = (me + n - shift) % n;
            let tag = ((it as i32) << 4) | dir as i32;
            // Four sub-block messages per face: short-message heavy (the
            // property the paper credits for TCP's slight edge on BT).
            let sends: Vec<_> = (0..4).map(|_| mpi.isend(to, tag, zeros(m))).collect();
            let recvs: Vec<_> = (0..4).map(|_| mpi.irecv(Some(from), Some(tag))).collect();
            mpi.compute(per_iter / 3);
            mpi.waitall(&sends);
            mpi.waitall(&recvs);
        }
    }
    let _ = mpi.allreduce(ReduceOp::Sum, &[1.0; 5]);
}

/// **MG** — multigrid V-cycles: neighbor exchanges whose size shrinks with
/// every grid level, so traffic is dominated by *short* messages.
fn mg(mpi: &mut Mpi, class: Class) {
    let n = mpi.size();
    let me = mpi.rank();
    let niter = iters(20, class);
    // Faces move as half-planes (64 KB at class B): even MG's largest
    // messages stay under the eager limit — the short-message-heavy
    // profile the paper calls out for MG.
    let top = msg(64 * 1024, class);
    let per_level = Dur::from_secs_f64(2.0 * class.scale() / (niter as f64 * 7.0));
    for it in 0..niter {
        let mut level_bytes = top;
        let mut level = 0i32;
        while level_bytes >= 64 {
            // Exchange with ±1 and ±2 ring neighbors at each level.
            for shift in [1u16, 2] {
                let to = (me + shift) % n;
                let from = (me + n - shift) % n;
                let tag = ((it as i32) << 8) | (level << 2) | shift as i32;
                let s = mpi.isend(to, tag, zeros(level_bytes));
                let r = mpi.irecv(Some(from), Some(tag));
                mpi.waitall(&[s, r]);
            }
            mpi.compute(per_level);
            level_bytes /= 4;
            level += 1;
        }
    }
    let _ = mpi.allreduce(ReduceOp::Max, &[1.0]);
}

/// **IS** — integer sort: a bucket-size reduction then an all-to-all key
/// redistribution (the heavy phase), per iteration.
fn is(mpi: &mut Mpi, class: Class) {
    let n = mpi.size();
    let niter = iters(10, class);
    let keys_per_pair = msg(512 * 1024, class);
    let per_iter = Dur::from_secs_f64(1.2 * class.scale() / niter as f64);
    for _ in 0..niter {
        // Bucket-size exchange (small).
        let _ = mpi.allreduce(ReduceOp::Sum, &[0.0; 64]);
        // Key redistribution (large, all-to-all).
        let data: Vec<Bytes> = (0..n).map(|_| zeros(keys_per_pair)).collect();
        let _ = mpi.alltoall(data);
        mpi.compute(per_iter);
    }
    let _ = mpi.allreduce(ReduceOp::Max, &[1.0]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_complete_class_s_both_transports() {
        for k in Kernel::ALL {
            for cfg in [MpiCfg::tcp(8, 0.0), MpiCfg::sctp(8, 0.0)] {
                let r = run(cfg, k, Class::S);
                assert!(r.secs > 0.0, "{} produced no time", k.name());
                assert!(r.mops_per_sec.is_finite());
            }
        }
    }

    #[test]
    fn class_w_scales_up_from_s() {
        let s = run(MpiCfg::sctp(8, 0.0), Kernel::CG, Class::S);
        let w = run(MpiCfg::sctp(8, 0.0), Kernel::CG, Class::W);
        assert!(w.secs > s.secs, "bigger class must take longer");
    }

    #[test]
    fn kernels_survive_loss() {
        for k in [Kernel::LU, Kernel::IS] {
            let r = run(MpiCfg::sctp(8, 0.01).with_seed(4), k, Class::S);
            assert!(r.secs > 0.0);
        }
    }
}
