//! The mixed-message-size farm — the Figure 12 study rerun with *unequal*
//! task sizes, which is where RFC 8260 message interleaving earns its keep.
//!
//! The Bulk Processor Farm of Figures 10–12 sends every task at one size,
//! so multistreaming alone (one tag per stream) removes most head-of-line
//! coupling. Real farm codes mix task types: a few large "bulk" tasks ride
//! alongside many small "urgent" ones. Without I-DATA the association's
//! outbound queue is a single FIFO — once a 60 KB bulk task starts
//! fragmenting onto the wire, every urgent task queued after it waits for
//! all of its fragments, *no matter which stream it is on*. That is
//! sender-side HOL blocking, and it is invisible to the receiver-side
//! accounting of Figure 12. With I-DATA negotiated and a non-FIFO stream
//! scheduler, urgent fragments interleave into the bulk transmission and
//! the blocked time collapses.
//!
//! The workload is the farm manager/worker loop of [`crate::farm`] with a
//! deterministic task-size schedule: every `bulk_every`-th task is bulk
//! (tag 0 → one stream), the rest are urgent on the remaining tags.

use bytes::Bytes;
use mpi_core::{mpirun, mpirun_traced, Mpi, MpiCfg, ANY_SOURCE, ANY_TAG};
use simcore::Dur;

use crate::zeros;

/// Tag of worker→manager job requests.
const REQ_TAG: i32 = 1_000;
/// Tag of manager→worker termination messages.
const DONE_TAG: i32 = 1_001;
/// Size of a request message.
const REQ_BYTES: usize = 64;

/// Mixed-size farm parameters.
#[derive(Debug, Clone, Copy)]
pub struct MixedCfg {
    /// Total number of tasks. Must be divisible by `fanout`.
    pub num_tasks: u32,
    /// Bulk task payload (tag 0). Kept under the eager/rendezvous limit so
    /// the transport queues it whole — the condition that produces
    /// sender-side HOL blocking.
    pub bulk_bytes: usize,
    /// Urgent task payload (tags 1..`max_work_tags`).
    pub urgent_bytes: usize,
    /// Every `bulk_every`-th task is bulk; the rest are urgent.
    pub bulk_every: u32,
    /// Distinct task types = distinct tags (bulk claims tag 0).
    pub max_work_tags: u32,
    /// Tasks sent per request.
    pub fanout: u32,
    /// Outstanding job requests per worker.
    pub outstanding: u32,
    /// Modelled processing time per task.
    pub compute_per_task: Dur,
}

impl MixedCfg {
    /// Default mixed workload: 60 KB bulk (just under the 64 KB eager
    /// limit), 1 KB urgent, one bulk task per fanout-10 batch.
    pub fn default_mix(num_tasks: u32) -> MixedCfg {
        MixedCfg {
            num_tasks,
            bulk_bytes: 60 * 1024,
            urgent_bytes: 1024,
            bulk_every: 10,
            max_work_tags: 10,
            fanout: 10,
            outstanding: 10,
            compute_per_task: Dur::from_micros(500),
        }
    }

    /// Scaled-down configuration for tests and `--quick` runs.
    pub fn small() -> MixedCfg {
        MixedCfg::default_mix(200)
    }

    /// Size and tag of task number `task_no` (deterministic schedule).
    pub fn task_shape(&self, task_no: u32) -> (usize, i32) {
        if task_no % self.bulk_every == 0 {
            (self.bulk_bytes, 0)
        } else {
            let urgent_tags = self.max_work_tags.max(2) - 1;
            (self.urgent_bytes, (1 + task_no % urgent_tags) as i32)
        }
    }
}

/// Per-run results.
#[derive(Debug, Clone, Copy)]
pub struct MixedResult {
    /// Total run time in seconds.
    pub secs: f64,
    /// Tasks completed by the workers (sanity: must equal `num_tasks`).
    pub tasks_done: u32,
    /// Simulator events fired (self-metering).
    pub events: u64,
    /// PR-SCTP messages abandoned (0 unless the run sets a lifetime).
    pub msgs_abandoned: u64,
    /// FORWARD-TSN chunks sent.
    pub fwd_tsn_out: u64,
}

/// [`MixedResult`] plus the per-side HOL accounting from a forced trace.
#[derive(Debug, Clone, Copy)]
pub struct TracedMixedResult {
    pub result: MixedResult,
    /// Sender-side HOL blocks / total blocked ns across the run.
    pub snd_hol_blocks: u64,
    pub snd_hol_ns: u64,
    /// Receiver-side HOL blocks / total blocked ns across the run.
    pub rcv_hol_blocks: u64,
    pub rcv_hol_ns: u64,
}

/// Run the mixed farm under `mpi_cfg`.
pub fn run(mpi_cfg: MpiCfg, cfg: MixedCfg) -> MixedResult {
    let done = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let dc = done.clone();
    let report = mpirun(mpi_cfg, move |mpi| {
        body(mpi, cfg, &dc);
    });
    MixedResult {
        secs: report.secs(),
        tasks_done: done.load(std::sync::atomic::Ordering::Relaxed),
        events: report.events,
        msgs_abandoned: report.sctp.msgs_abandoned,
        fwd_tsn_out: report.sctp.fwd_tsn_out,
    }
}

/// Run the mixed farm with the flight recorder forced on, returning the
/// per-side HOL totals the interleave experiment asserts on.
pub fn run_traced(mpi_cfg: MpiCfg, cfg: MixedCfg) -> TracedMixedResult {
    let done = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let dc = done.clone();
    let (report, dump) = mpirun_traced(mpi_cfg, move |mpi| {
        body(mpi, cfg, &dc);
    });
    let hol = dump.hol_totals();
    TracedMixedResult {
        result: MixedResult {
            secs: report.secs(),
            tasks_done: done.load(std::sync::atomic::Ordering::Relaxed),
            events: report.events,
            msgs_abandoned: report.sctp.msgs_abandoned,
            fwd_tsn_out: report.sctp.fwd_tsn_out,
        },
        snd_hol_blocks: hol.snd_blocks,
        snd_hol_ns: hol.snd_ns,
        rcv_hol_blocks: hol.rcv_blocks,
        rcv_hol_ns: hol.rcv_ns,
    }
}

fn body(mpi: &mut Mpi, cfg: MixedCfg, done: &std::sync::atomic::AtomicU32) {
    if mpi.rank() == 0 {
        manager(mpi, cfg);
    } else {
        let n = worker(mpi, cfg);
        done.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }
}

fn manager(mpi: &mut Mpi, cfg: MixedCfg) {
    assert!(mpi.size() >= 2, "mixed farm needs a manager and a worker");
    assert_eq!(cfg.num_tasks % cfg.fanout, 0, "tasks must divide evenly into batches");
    let workers = (mpi.size() - 1) as u32;
    let batches = cfg.num_tasks / cfg.fanout;
    let total_requests = batches + cfg.outstanding * workers;
    let mut remaining = cfg.num_tasks;
    let mut task_no: u32 = 0;
    let mut inflight: Vec<mpi_core::ReqId> = Vec::new();
    for _ in 0..total_requests {
        let (st, _req) = mpi.recv(ANY_SOURCE, Some(REQ_TAG));
        let worker = st.src;
        if remaining > 0 {
            // One batch: `fanout` tasks off the deterministic size/tag
            // schedule. A batch's bulk task lands first, so the urgent
            // tasks behind it are exactly the sender-HOL victims.
            for _ in 0..cfg.fanout {
                let (bytes, tag) = cfg.task_shape(task_no);
                task_no += 1;
                inflight.push(mpi.isend(worker, tag, zeros(bytes)));
            }
            remaining -= cfg.fanout;
            mpi.reap_sends(&mut inflight);
        } else {
            mpi.send(worker, DONE_TAG, Bytes::new());
        }
    }
    let leftovers: Vec<_> = std::mem::take(&mut inflight);
    mpi.waitall(&leftovers);
}

/// Returns the number of tasks this worker processed.
fn worker(mpi: &mut Mpi, cfg: MixedCfg) -> u32 {
    let pool = (cfg.outstanding * cfg.fanout + cfg.outstanding) as usize;
    let mut recvs: Vec<_> = (0..pool).map(|_| mpi.irecv(Some(0), ANY_TAG)).collect();
    for _ in 0..cfg.outstanding {
        mpi.send(0, REQ_TAG, zeros(REQ_BYTES));
    }
    let mut tasks_in_batch = 0u32;
    let mut tasks_done = 0u32;
    let mut dones = 0u32;
    while dones < cfg.outstanding {
        let (idx, st, _msg) = mpi.waitany(&recvs);
        recvs[idx] = mpi.irecv(Some(0), ANY_TAG);
        if st.tag == DONE_TAG {
            dones += 1;
            continue;
        }
        tasks_done += 1;
        tasks_in_batch += 1;
        mpi.compute(cfg.compute_per_task);
        if tasks_in_batch == cfg.fanout {
            tasks_in_batch = 0;
            mpi.send(0, REQ_TAG, zeros(REQ_BYTES));
        }
    }
    tasks_done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_schedule_is_deterministic_and_mixed() {
        let cfg = MixedCfg::small();
        let (b, t) = cfg.task_shape(0);
        assert_eq!((b, t), (cfg.bulk_bytes, 0));
        for i in 1..10 {
            let (b, t) = cfg.task_shape(i);
            assert_eq!(b, cfg.urgent_bytes);
            assert!((1..cfg.max_work_tags as i32).contains(&t));
        }
        assert_eq!(cfg.task_shape(10).1, 0, "bulk recurs every bulk_every");
    }

    #[test]
    fn all_tasks_processed_with_and_without_interleave() {
        for cfg in [
            MpiCfg::sctp(4, 0.0),
            MpiCfg::sctp(4, 0.0)
                .with_interleave(true)
                .with_scheduler(transport::sctp::SchedKind::RoundRobin, &[]),
        ] {
            let r = run(cfg, MixedCfg::small());
            assert_eq!(r.tasks_done, 200);
            assert!(r.secs > 0.0);
        }
    }

    #[test]
    fn traced_run_reports_sender_hol_without_interleave() {
        let r = run_traced(MpiCfg::sctp(3, 0.0), MixedCfg::small());
        assert_eq!(r.result.tasks_done, 200);
        assert!(r.snd_hol_blocks > 0, "mixed sizes must produce sender-side HOL: {r:?}");
    }

    #[test]
    fn interleave_with_rr_reduces_sender_hol_time() {
        let base = run_traced(MpiCfg::sctp(3, 0.0), MixedCfg::small());
        let intl = run_traced(
            MpiCfg::sctp(3, 0.0)
                .with_interleave(true)
                .with_scheduler(transport::sctp::SchedKind::RoundRobin, &[]),
            MixedCfg::small(),
        );
        assert_eq!(intl.result.tasks_done, 200);
        assert!(
            intl.snd_hol_ns < base.snd_hol_ns,
            "I-DATA + RR must strictly reduce sender-side blocked time: \
             {} vs {} ns",
            intl.snd_hol_ns,
            base.snd_hol_ns
        );
    }
}
