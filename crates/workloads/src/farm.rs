//! The Bulk Processor Farm (paper §4.2.1) — a latency-tolerant
//! manager/worker program with the communication pattern of real-world
//! farm codes.
//!
//! * One manager (rank 0), `n-1` workers.
//! * Workers keep a fixed number of outstanding job requests (10 in the
//!   paper) and receive with `MPI_ANY_TAG` — they are willing to do any
//!   task type; all task messages are *expected* (pre-posted).
//! * The manager services requests in arrival order (`MPI_ANY_SOURCE`) and
//!   answers each with `fanout` tasks; each task carries a tag in
//!   `0..max_work_tags` (its *type*), which the SCTP module maps onto
//!   streams — the mechanism behind Figures 10–12.
//! * When the task pool is exhausted, each further request is answered
//!   with a termination message.

use bytes::Bytes;
use mpi_core::{mpirun, Mpi, MpiCfg, ANY_SOURCE, ANY_TAG};
use simcore::Dur;

use crate::zeros;

/// Tag of worker→manager job requests.
const REQ_TAG: i32 = 1_000;
/// Tag of manager→worker termination messages.
const DONE_TAG: i32 = 1_001;
/// Size of a request/result message.
const REQ_BYTES: usize = 64;

/// Farm parameters (paper defaults in [`FarmCfg::paper`]).
#[derive(Debug, Clone, Copy)]
pub struct FarmCfg {
    /// Total number of tasks (paper: 10 000). Must be divisible by fanout.
    pub num_tasks: u32,
    /// Task payload size: 30 KB (short) or 300 KB (long) in the paper.
    pub task_bytes: usize,
    /// Tasks sent per request (paper: 1 and 10).
    pub fanout: u32,
    /// Distinct task types = distinct tags (paper's MaxWorkTags).
    pub max_work_tags: u32,
    /// Outstanding job requests per worker (paper: 10).
    pub outstanding: u32,
    /// Modelled processing time per task.
    pub compute_per_task: Dur,
}

impl FarmCfg {
    /// Paper settings for a given task size and fanout. The per-task
    /// compute time is calibrated against the paper's zero-loss totals
    /// (Figure 10): those imply the farm is mostly manager/wire-bound, so
    /// workers are frequently idle and answer rendezvous ACKs promptly
    /// (see EXPERIMENTS.md E4).
    pub fn paper(task_bytes: usize, fanout: u32) -> FarmCfg {
        let compute = if task_bytes > 64 * 1024 {
            Dur::from_micros(6_000) // long tasks: 6 ms
        } else {
            Dur::from_micros(1_000) // short tasks: 1 ms
        };
        FarmCfg {
            num_tasks: 10_000,
            task_bytes,
            fanout,
            max_work_tags: 10,
            outstanding: 10,
            compute_per_task: compute,
        }
    }

    /// A scaled-down configuration for tests and Criterion benches.
    pub fn small(task_bytes: usize, fanout: u32) -> FarmCfg {
        FarmCfg { num_tasks: 200, ..FarmCfg::paper(task_bytes, fanout) }
    }
}

/// Per-run results.
#[derive(Debug, Clone, Copy)]
pub struct FarmResult {
    pub secs: f64,
    pub tasks_done: u32,
    /// Simulator events fired during the run (self-metering, see
    /// `bench-harness`).
    pub events: u64,
    /// Runtime driver↔process handoffs performed (self-metering).
    pub handoffs: u64,
    /// Wakes coalesced away by the runtime fast path (self-metering).
    pub wakes_coalesced: u64,
    /// Packet trains emitted through the burst path (self-metering).
    pub bursts_total: u64,
    /// Packets fused inside those trains (self-metering).
    pub pkts_fused: u64,
    /// Timers that took the O(1) wheel insert (self-metering).
    pub wheel_hits: u64,
    /// Timers beyond the wheel horizon (heap fallback; self-metering).
    pub heap_falls: u64,
    /// Peak length of the matching layer's unexpected-message queue across
    /// all ranks — must stay bounded for this latency-tolerant workload.
    pub unexpected_peak: usize,
}

/// Run the farm under `mpi_cfg`; returns total run time (Figures 10–12's
/// metric).
pub fn run(mpi_cfg: MpiCfg, cfg: FarmCfg) -> FarmResult {
    assert!(mpi_cfg.nprocs >= 2, "farm needs a manager and a worker");
    assert_eq!(cfg.num_tasks % cfg.fanout, 0, "tasks must divide evenly into batches");
    let done_count = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let peak = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let dc = done_count.clone();
    let pk = peak.clone();
    let report = mpirun(mpi_cfg, move |mpi| {
        if mpi.rank() == 0 {
            manager(mpi, cfg, None);
        } else {
            let n = worker(mpi, cfg);
            dc.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
        pk.fetch_max(mpi.unexpected_peak(), std::sync::atomic::Ordering::Relaxed);
    });
    FarmResult {
        secs: report.secs(),
        tasks_done: done_count.load(std::sync::atomic::Ordering::Relaxed),
        events: report.events,
        handoffs: report.handoffs,
        wakes_coalesced: report.wakes_coalesced,
        bursts_total: report.bursts_total,
        pkts_fused: report.pkts_fused,
        wheel_hits: report.wheel_hits,
        heap_falls: report.heap_falls,
        unexpected_peak: peak.load(std::sync::atomic::Ordering::Relaxed),
    }
}

/// Run the farm body inside an existing `mpirun` rank (diagnostics).
pub fn run_inline(mpi: &mut Mpi, cfg: FarmCfg) {
    if mpi.rank() == 0 {
        manager(mpi, cfg, None);
    } else {
        worker(mpi, cfg);
    }
}

/// Farm result including transport-level failover metrics (experiments A3
/// and E-faults).
#[derive(Debug, Clone, Copy)]
pub struct FaultFarmResult {
    /// Total run time in seconds.
    pub secs: f64,
    /// Tasks completed by the workers (sanity: must equal `num_tasks`).
    pub tasks_done: u32,
    /// Primary-path switches performed by SCTP across all associations.
    pub failovers: u64,
    /// Instant of the earliest failover anywhere, ns (0 = none). Against a
    /// scripted flap start this gives the fault-detection latency.
    pub first_failover_ns: u64,
    /// Simulator events fired (self-metering, see `bench-harness`).
    pub events: u64,
}

/// Run the farm, optionally killing network 0 (every host's primary path)
/// after `kill_at_batch` batches have been distributed — the §3.5.1
/// failover experiment. Requires `mpi_cfg.sctp.num_paths > 1` to survive.
pub fn run_with_fault(mpi_cfg: MpiCfg, cfg: FarmCfg, kill_at_batch: Option<u32>) -> FaultFarmResult {
    let done_count = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
    let dc = done_count.clone();
    let report = mpirun(mpi_cfg, move |mpi| {
        if mpi.rank() == 0 {
            manager(mpi, cfg, kill_at_batch);
        } else {
            let n = worker(mpi, cfg);
            dc.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        }
    });
    FaultFarmResult {
        secs: report.secs(),
        tasks_done: done_count.load(std::sync::atomic::Ordering::Relaxed),
        failovers: report.sctp.failovers,
        first_failover_ns: report.sctp.first_failover_ns,
        events: report.events,
    }
}

/// Run the farm under a *scripted* fault plan: the damage (link flaps,
/// bursty loss, jitter, degradation) comes from `mpi_cfg.fault_plan`
/// rather than from the application tearing a network down mid-run, so
/// two runs with the same plan and seed are byte-identical.
pub fn run_with_plan(mpi_cfg: MpiCfg, cfg: FarmCfg) -> FaultFarmResult {
    run_with_fault(mpi_cfg, cfg, None)
}

fn manager(mpi: &mut Mpi, cfg: FarmCfg, kill_at_batch: Option<u32>) {
    let workers = (mpi.size() - 1) as u32;
    let batches = cfg.num_tasks / cfg.fanout;
    let total_requests = batches + cfg.outstanding * workers;
    let mut remaining = cfg.num_tasks;
    let mut task_no: u32 = 0;
    // The manager is latency tolerant: sends stay in flight (nonblocking)
    // so a retransmission stall on one worker's tasks never stops it from
    // servicing the other workers' requests — the overlap §4.2 relies on.
    let mut inflight: Vec<mpi_core::ReqId> = Vec::new();
    for _ in 0..total_requests {
        let (st, _req) = mpi.recv(ANY_SOURCE, Some(REQ_TAG));
        let worker = st.src;
        if remaining > 0 {
            if kill_at_batch == Some((cfg.num_tasks - remaining) / cfg.fanout) {
                // Fault injection (A3): the primary network dies.
                mpi.with_world(|w| w.net.set_network_up(0, false));
            }
            // One batch: `fanout` tasks, each with its own type tag.
            for _ in 0..cfg.fanout {
                let tag = (task_no % cfg.max_work_tags) as i32;
                task_no += 1;
                inflight.push(mpi.isend(worker, tag, zeros(cfg.task_bytes)));
            }
            remaining -= cfg.fanout;
            mpi.reap_sends(&mut inflight);
        } else {
            mpi.send(worker, DONE_TAG, Bytes::new());
        }
    }
    let leftovers: Vec<_> = std::mem::take(&mut inflight);
    mpi.waitall(&leftovers);
}

/// Returns the number of tasks this worker processed.
fn worker(mpi: &mut Mpi, cfg: FarmCfg) -> u32 {
    // Pre-post enough receives to cover everything that can be in flight:
    // `outstanding` batches of `fanout` tasks, plus termination messages.
    let pool = (cfg.outstanding * cfg.fanout + cfg.outstanding) as usize;
    let mut recvs: Vec<_> = (0..pool).map(|_| mpi.irecv(Some(0), ANY_TAG)).collect();

    // Issue the initial outstanding job requests.
    for _ in 0..cfg.outstanding {
        mpi.send(0, REQ_TAG, zeros(REQ_BYTES));
    }
    let mut tasks_in_batch = 0u32;
    let mut tasks_done = 0u32;
    let mut dones = 0u32;

    // Invariant: every request is answered with exactly one batch or one
    // DONE, and every completed batch immediately re-requests — so each
    // worker receives exactly `outstanding` DONEs, regardless of how SCTP
    // streams reorder a DONE around in-flight batches.
    while dones < cfg.outstanding {
        let (idx, st, _msg) = mpi.waitany(&recvs);
        // Re-post the consumed slot so messages stay expected.
        recvs[idx] = mpi.irecv(Some(0), ANY_TAG);
        if st.tag == DONE_TAG {
            dones += 1;
            continue;
        }
        // A task: process it (overlapping with the other posted receives).
        tasks_done += 1;
        tasks_in_batch += 1;
        mpi.compute(cfg.compute_per_task);
        if tasks_in_batch == cfg.fanout {
            tasks_in_batch = 0;
            // Ask for more work (the request doubles as result delivery).
            mpi.send(0, REQ_TAG, zeros(REQ_BYTES));
        }
    }
    debug_assert_eq!(tasks_in_batch, 0, "exited with a partial batch");
    tasks_done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_processed_no_loss() {
        for cfg in [MpiCfg::tcp(4, 0.0), MpiCfg::sctp(4, 0.0)] {
            let r = run(cfg, FarmCfg::small(30 * 1024, 1));
            assert_eq!(r.tasks_done, 200);
            assert!(r.secs > 0.0);
        }
    }

    #[test]
    fn all_tasks_processed_with_fanout_under_loss() {
        for cfg in [MpiCfg::tcp(4, 0.01).with_seed(3), MpiCfg::sctp(4, 0.01).with_seed(3)] {
            let r = run(cfg, FarmCfg::small(30 * 1024, 10));
            assert_eq!(r.tasks_done, 200);
        }
    }

    #[test]
    fn long_tasks_use_rendezvous_and_complete() {
        let r = run(MpiCfg::sctp(3, 0.0), FarmCfg { num_tasks: 40, ..FarmCfg::small(300 * 1024, 10) });
        assert_eq!(r.tasks_done, 40);
    }

    #[test]
    fn single_stream_sctp_also_completes() {
        let r = run(MpiCfg::sctp_single_stream(4, 0.02).with_seed(9), FarmCfg::small(30 * 1024, 10));
        assert_eq!(r.tasks_done, 200);
    }
}
