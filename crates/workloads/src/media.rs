//! A media-like deadline workload on the raw SCTP API — the PR-SCTP
//! (RFC 3758) study.
//!
//! A source emits fixed-size frames at a fixed cadence on one stream, each
//! tagged with its frame number in the PPID. Under loss, a reliable
//! transport retransmits old frames at the expense of fresh ones: the
//! receiver falls behind and every delivered frame grows *staler*. A media
//! sender instead marks each frame with a lifetime — a frame not delivered
//! within its lifetime is abandoned, the sender emits FORWARD-TSN, and the
//! receiver skips ahead to current data. The end-of-run sentinel is sent
//! with an explicit `None` lifetime (fully reliable): the run can only
//! terminate through PR-SCTP's reliable/partial coexistence working.
//!
//! Metrics: frames delivered vs abandoned, FORWARD-TSN traffic, and the
//! *staleness* of each delivered frame — delivery instant minus the
//! frame's scheduled emission instant. `max_staleness` bounded by roughly
//! the lifetime (plus one retransmission round) is the acceptance property;
//! a reliable run under the same loss shows the unbounded alternative.

use bytes::Bytes;
use netsim::NetCfg;
use simcore::{Dur, ProcEnv, Runtime, SimTime};
use transport::sctp::{self, SctpCfg};
use transport::tcp::TcpCfg;
use transport::World;

use crate::zeros;

type Env = ProcEnv<World>;

/// Media-source parameters.
#[derive(Debug, Clone, Copy)]
pub struct MediaCfg {
    /// Number of frames to emit (excluding the sentinel).
    pub frames: u32,
    /// Payload bytes per frame.
    pub frame_bytes: usize,
    /// Emission cadence: frame `i` is offered at `i * interval`.
    pub interval: Dur,
    /// Per-frame PR-SCTP lifetime; `None` = fully reliable source.
    pub lifetime: Option<Dur>,
    /// Bernoulli loss rate on every path.
    pub loss: f64,
    /// Simulation seed.
    pub seed: u64,
    /// Offer RFC 8260 interleaving (exercises I-DATA + FORWARD-TSN
    /// together; the semantics of the workload do not depend on it).
    pub interleave: bool,
}

impl MediaCfg {
    /// A 2 Mframe/s source of 32 KB frames — intentionally near the 1 Gb/s
    /// link's capacity so loss-recovery stalls back the queue up.
    pub fn new(frames: u32, lifetime: Option<Dur>, loss: f64) -> MediaCfg {
        MediaCfg {
            frames,
            frame_bytes: 32 * 1024,
            interval: Dur::from_micros(500),
            lifetime,
            loss,
            seed: 0xBA5E,
            interleave: false,
        }
    }
}

/// What the run measured.
#[derive(Debug, Clone, Copy)]
pub struct MediaResult {
    /// Frames accepted by the transport at the source.
    pub frames_sent: u32,
    /// Frames the source skipped because the send buffer was full (the
    /// encoder's drop-at-source path; only a backlogged reliable run hits
    /// it).
    pub frames_skipped: u32,
    /// Frames that reached the receiving application.
    pub frames_delivered: u32,
    /// Messages abandoned by PR-SCTP (sender side).
    pub msgs_abandoned: u64,
    /// FORWARD-TSN chunks sent / received.
    pub fwd_tsn_out: u64,
    pub fwd_tsn_in: u64,
    /// Worst delivered-frame staleness: delivery instant minus scheduled
    /// emission instant, ns.
    pub max_staleness_ns: u64,
    /// Mean delivered-frame staleness, ns.
    pub mean_staleness_ns: u64,
    /// Simulated seconds until the sentinel arrived.
    pub secs: f64,
    /// Simulator events fired (self-metering).
    pub events: u64,
}

/// Sentinel PPID: the last message of the run, always sent reliable.
const SENTINEL: u32 = u32::MAX;
/// Port both endpoints use.
const PORT: u16 = 5_004;

/// Run the media source host 0 → host 1 and collect delivery metrics.
pub fn run(cfg: MediaCfg) -> MediaResult {
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::sync::Arc;

    let mut sctp_cfg = SctpCfg {
        pr_sctp: true,
        pr_lifetime: cfg.lifetime,
        interleave: cfg.interleave,
        ..SctpCfg::default()
    };
    // A deep send buffer: the reliable comparison run must be allowed to
    // build a real backlog (that backlog *is* the staleness the deadline
    // variant abandons away).
    sctp_cfg.sndbuf = 2 * 1024 * 1024;
    sctp_cfg.rcvbuf = 2 * 1024 * 1024;
    let world = World::new(NetCfg::paper_cluster(cfg.loss), TcpCfg::default(), sctp_cfg);
    let mut rt = Runtime::new(world, cfg.seed);

    let sent = Arc::new(AtomicU32::new(0));
    let skipped = Arc::new(AtomicU32::new(0));
    let delivered = Arc::new(AtomicU32::new(0));
    let max_stale = Arc::new(AtomicU64::new(0));
    let sum_stale = Arc::new(AtomicU64::new(0));

    let (s_sent, s_skip) = (sent.clone(), skipped.clone());
    rt.spawn("source", move |env: Env| {
        let ep = env.with(|w, _| sctp::socket(w, 0, PORT, true));
        let a = {
            let a = env.with(|w, ctx| sctp::connect(w, ctx, ep, 1, PORT));
            let me = env.id();
            env.block_on(|w, _| match sctp::assoc_state(w, a) {
                sctp::AssocState::Established => Some(()),
                sctp::AssocState::Aborted => panic!("association failed during setup"),
                _ => {
                    sctp::register_writer(w, ep, me);
                    None
                }
            });
            a
        };
        for i in 0..cfg.frames {
            // Hold the cadence: sleep until this frame's emission instant.
            let due = SimTime::ZERO + Dur::from_nanos(cfg.interval.as_nanos() * i as u64);
            let now = env.with(|_, ctx| ctx.now());
            if due > now {
                env.sleep(due.since(now));
            }
            let frame = zeros(cfg.frame_bytes);
            let r = env.with(|w, ctx| sctp::sendmsg_pr(w, ctx, a, 0, i, frame, cfg.lifetime));
            match r {
                Ok(()) => {
                    s_sent.fetch_add(1, Ordering::Relaxed);
                }
                // Encoder semantics: a full buffer drops the frame at the
                // source rather than stalling the capture pipeline.
                Err(sctp::SendErr::WouldBlock) => {
                    s_skip.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("sendmsg_pr failed: {e:?}"),
            }
        }
        // The sentinel must arrive no matter what: explicit None lifetime
        // overrides the association's default (RFC 3758 §3.4 coexistence).
        let me = env.id();
        env.block_on(|w, ctx| {
            match sctp::sendmsg_pr(w, ctx, a, 0, SENTINEL, Bytes::from_static(b"eos"), None) {
                Ok(()) => Some(()),
                Err(sctp::SendErr::WouldBlock) => {
                    sctp::register_writer(w, ep, me);
                    None
                }
                Err(e) => panic!("sentinel send failed: {e:?}"),
            }
        });
    });

    let (r_del, r_max, r_sum) = (delivered.clone(), max_stale.clone(), sum_stale.clone());
    let interval_ns = cfg.interval.as_nanos();
    rt.spawn("sink", move |env: Env| {
        let ep = env.with(|w, _| {
            let ep = sctp::socket(w, 1, PORT, true);
            sctp::listen(w, ep);
            ep
        });
        loop {
            let me = env.id();
            let m = env.block_on(|w, ctx| match sctp::recvmsg(w, ctx, ep) {
                Some(m) => Some(m),
                None => {
                    sctp::register_reader(w, ep, me);
                    None
                }
            });
            if m.ppid == SENTINEL {
                break;
            }
            let due_ns = interval_ns * m.ppid as u64;
            let stale = env.with(|_, ctx| ctx.now().as_nanos()).saturating_sub(due_ns);
            r_del.fetch_add(1, Ordering::Relaxed);
            r_max.fetch_max(stale, Ordering::Relaxed);
            r_sum.fetch_add(stale, Ordering::Relaxed);
        }
    });

    let out = rt.run();
    let stats = out
        .world
        .hosts
        .iter()
        .map(|h| h.sctp.total_stats())
        .fold(sctp::AssocStats::default(), |mut a, s| {
            a.msgs_abandoned += s.msgs_abandoned;
            a.fwd_tsn_out += s.fwd_tsn_out;
            a.fwd_tsn_in += s.fwd_tsn_in;
            a
        });
    let n_del = delivered.load(std::sync::atomic::Ordering::Relaxed);
    MediaResult {
        frames_sent: sent.load(std::sync::atomic::Ordering::Relaxed),
        frames_skipped: skipped.load(std::sync::atomic::Ordering::Relaxed),
        frames_delivered: n_del,
        msgs_abandoned: stats.msgs_abandoned,
        fwd_tsn_out: stats.fwd_tsn_out,
        fwd_tsn_in: stats.fwd_tsn_in,
        max_staleness_ns: max_stale.load(std::sync::atomic::Ordering::Relaxed),
        mean_staleness_ns: sum_stale.load(std::sync::atomic::Ordering::Relaxed)
            / n_del.max(1) as u64,
        secs: out.sim_time.as_secs_f64(),
        events: out.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_run_delivers_every_frame() {
        let r = run(MediaCfg::new(100, None, 0.0));
        assert_eq!(r.frames_delivered, 100);
        assert_eq!(r.frames_skipped, 0);
        assert_eq!(r.msgs_abandoned, 0);
        assert_eq!(r.fwd_tsn_out, 0);
    }

    #[test]
    fn deadline_run_abandons_under_loss_and_terminates() {
        let r = run(MediaCfg::new(300, Some(Dur::from_millis(20)), 0.02));
        assert!(r.msgs_abandoned > 0, "tight deadlines under loss must abandon: {r:?}");
        assert!(r.fwd_tsn_out > 0, "abandonment must emit FORWARD-TSN: {r:?}");
        assert!(
            r.frames_delivered as u64 + r.msgs_abandoned + r.frames_skipped as u64
                >= r.frames_sent as u64,
            "every frame is delivered, abandoned, or source-dropped: {r:?}"
        );
    }

    #[test]
    fn deadlines_bound_staleness_vs_reliable() {
        let lifetime = Dur::from_millis(20);
        let reliable = run(MediaCfg::new(300, None, 0.02));
        let deadline = run(MediaCfg::new(300, Some(lifetime), 0.02));
        assert!(
            deadline.max_staleness_ns < reliable.max_staleness_ns,
            "abandoning stale frames must reduce worst staleness: {} vs {} ns",
            deadline.max_staleness_ns,
            reliable.max_staleness_ns
        );
    }

    #[test]
    fn interleaved_media_behaves_the_same() {
        let mut cfg = MediaCfg::new(100, Some(Dur::from_millis(50)), 0.01);
        cfg.interleave = true;
        let r = run(cfg);
        assert!(r.frames_delivered > 0);
        assert!(r.secs > 0.0);
    }
}
