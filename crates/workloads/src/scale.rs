//! Scale workloads: incast fan-in and many-tenant switch sharing, run on
//! the sharded engine at thousands of ranks.
//!
//! The paper's farm tops out at 8 nodes; the data-centre follow-on
//! literature (incast collapse, multi-tenant fabrics) is exactly the regime
//! that needs 1k–10k ranks and the sharded engine. The workload here is a
//! deliberately lean reliable-flow transport — windowed go-back-N with
//! slow start, AIMD, fast retransmit and an exponentially backed-off RTO —
//! because at this scale the interesting dynamics are *collective*
//! (synchronized windows overflowing one FIFO), not per-byte protocol
//! detail, and because every node must be a flat state machine: blocking
//! per-rank processes do not scale to 10k ranks.
//!
//! Three design rules keep the model bit-identical at any shard count
//! (see `simcore::shard` for the engine's contract):
//!
//! * nodes touch only their own NIC ([`netsim::shardnet::NodeNic`]) and
//!   per-flow state, and talk through the engine's mailbox;
//! * all randomness (loss, jitter) is drawn from per-*node* RNG streams at
//!   the source;
//! * the congestion window is kept to an even number of packets and the
//!   receiver acks every [`ScaleCfg::ack_every`] in-order arrivals (plus
//!   immediately on any out-of-order or final packet), so the receiver
//!   needs no delayed-ack timer at all — parity guarantees a full window
//!   always generates an ack.
//!
//! The RTO timer is *lazy*: acks just slide a deadline forward; the single
//! armed timer re-arms itself when it wakes early. A window of acks costs
//! zero timer-wheel traffic.

use std::sync::Arc;

use netsim::link::LinkDrop;
use netsim::shardnet::{NodeNic, SendVerdict, ShardNetCfg};
use simcore::{
    local_ix, run_sharded, shard_of, Ctx, Dur, Inbound, Mailbox, ShardCfg, ShardSim, ShardWorld,
    SimTime, TimerId,
};
use transport::rto::{RtoCfg, RtoEstimator};

/// One unidirectional transfer: `bytes` of payload from `src` to `dst`,
/// first packet offered at `start`.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    pub start: SimTime,
}

/// Scale-experiment configuration.
#[derive(Debug, Clone)]
pub struct ScaleCfg {
    /// Node count (every node gets a NIC; flows pick src/dst among them).
    pub nodes: u32,
    /// The transfers.
    pub flows: Vec<FlowSpec>,
    /// Star-network parameters; `net.lookahead()` is the engine's bound.
    pub net: ShardNetCfg,
    /// Payload bytes per packet.
    pub mss: u32,
    /// Per-packet wire overhead (headers).
    pub hdr: u32,
    /// Wire size of a pure ack.
    pub ack_bytes: u32,
    /// Ack every k-th in-order packet (out-of-order and flow-final packets
    /// are acked immediately). Keep `k` ≤ 2·initial window.
    pub ack_every: u32,
    /// Initial congestion window, in packet *pairs* (window = 2·pairs).
    pub init_pairs: u32,
    /// Window cap, in pairs.
    pub max_pairs: u32,
    /// RTO estimator parameters.
    pub rto: RtoCfg,
    /// Master seed (per-node streams derived from it).
    pub seed: u64,
    /// Safety stop; [`SimTime::MAX`] to run to completion.
    pub deadline: SimTime,
}

impl ScaleCfg {
    /// N synchronized senders, one victim (node 0): the incast benchmark.
    pub fn incast(senders: u32, block_bytes: u64, seed: u64) -> ScaleCfg {
        let flows = (1..=senders)
            .map(|s| FlowSpec { src: s, dst: 0, bytes: block_bytes, start: SimTime::ZERO })
            .collect();
        ScaleCfg::base(senders + 1, flows, seed)
    }

    /// `tenants` flows sharing `servers` receivers round-robin, starts
    /// staggered by `stagger` so arrival waves interleave.
    pub fn tenants(tenants: u32, servers: u32, block_bytes: u64, stagger: Dur, seed: u64) -> ScaleCfg {
        let flows = (0..tenants)
            .map(|t| FlowSpec {
                src: servers + t,
                dst: t % servers,
                bytes: block_bytes,
                start: SimTime::ZERO + Dur::from_nanos(stagger.as_nanos() * t as u64),
            })
            .collect();
        ScaleCfg::base(servers + tenants, flows, seed)
    }

    fn base(nodes: u32, flows: Vec<FlowSpec>, seed: u64) -> ScaleCfg {
        ScaleCfg {
            nodes,
            flows,
            // Every packet this model offers is either a full `mss + hdr`
            // data frame or an `ack_bytes` ack; the smaller of the two
            // legally widens the engine's lookahead (its serialization is a
            // latency every send pays).
            net: ShardNetCfg { nodes, min_wire_bytes: 64, ..ShardNetCfg::default() },
            mss: 1448,
            hdr: 52,
            ack_bytes: 64,
            ack_every: 2,
            init_pairs: 1,
            max_pairs: 32,
            // Data-centre-ish timers: much tighter than the era BSD stack,
            // still coarse enough that an incast RTO stall is catastrophic
            // relative to a ~66 µs RTT.
            rto: RtoCfg {
                initial: Dur::from_millis(200),
                min: Dur::from_millis(200),
                max: Dur::from_secs(60),
                granularity: Dur::from_millis(1),
                rtt_quantum: Dur::ZERO,
            },
            seed,
            deadline: SimTime::MAX,
        }
    }

    /// Packets a flow of `bytes` needs at this MSS.
    fn pkts(&self, bytes: u64) -> u32 {
        (bytes.div_ceil(self.mss as u64)).max(1) as u32
    }
}

/// Inter-node message. Arrival instants are stamped by the sender's NIC;
/// the receiving downlink FIFO is applied in merged order at the victim.
#[derive(Debug, Clone, Copy)]
pub enum Pkt {
    Data { flow: u32, seq: u32 },
    Ack { flow: u32, cum: u32 },
}

/// Sender half of one flow.
struct Sender {
    flow: u32,
    src: u32,
    dst: u32,
    total: u32,
    /// Next packet to (re)send.
    next: u32,
    /// Cumulative ack point.
    cum: u32,
    /// Lowest sequence never transmitted (Karn: only sample below it is a
    /// retransmission).
    fresh: u32,
    /// Congestion window in pairs (window = 2·pairs — even by
    /// construction, which is what lets the receiver ack every 2nd packet
    /// without a delayed-ack timer).
    pairs: u32,
    ssthresh: u32,
    /// Congestion-avoidance ack counter.
    ca_cnt: u32,
    dupacks: u32,
    rto: RtoEstimator,
    /// Lazy RTO deadline; acks slide it forward without touching the wheel.
    rto_deadline: SimTime,
    timer: Option<TimerId>,
    /// Outstanding RTT sample (Karn-clean), `None` when invalidated.
    sample: Option<(u32, SimTime)>,
    retrans: u64,
    timeouts: u64,
    fast_rtx: u64,
    done: bool,
}

/// Receiver half of one flow (pure reactive state machine — no timers).
struct Recv {
    expected: u32,
    total: u32,
    /// In-order arrivals not yet acked.
    pending: u32,
    /// Delivery instant of the final packet (0 = incomplete).
    done_at: u64,
    /// Out-of-order or duplicate arrivals discarded (go-back-N receiver).
    dups: u64,
}

/// One shard's state: the NICs of its nodes plus the sender/receiver halves
/// of flows whose endpoint it owns.
pub struct ScaleWorld {
    cfg: Arc<ScaleCfg>,
    /// NICs of owned nodes, indexed by `local_ix`.
    nics: Vec<NodeNic>,
    senders: Vec<Sender>,
    /// flow id → index into `senders` (u32::MAX when not owned).
    flow_sender: Vec<u32>,
    rx: Vec<Recv>,
    /// flow id → index into `rx` (u32::MAX when not owned).
    flow_rx: Vec<u32>,
}

impl ScaleWorld {
    fn new(shard: u32, shards: u32, cfg: Arc<ScaleCfg>) -> ScaleWorld {
        let nics = (0..cfg.nodes)
            .filter(|n| shard_of(*n, shards) == shard)
            .map(|n| NodeNic::new(&cfg.net, n, cfg.seed))
            .collect();
        let mut senders = Vec::new();
        let mut rx = Vec::new();
        let mut flow_sender = vec![u32::MAX; cfg.flows.len()];
        let mut flow_rx = vec![u32::MAX; cfg.flows.len()];
        for (f, spec) in cfg.flows.iter().enumerate() {
            assert!(spec.src < cfg.nodes && spec.dst < cfg.nodes && spec.src != spec.dst);
            let total = cfg.pkts(spec.bytes);
            if shard_of(spec.src, shards) == shard {
                flow_sender[f] = senders.len() as u32;
                senders.push(Sender {
                    flow: f as u32,
                    src: spec.src,
                    dst: spec.dst,
                    total,
                    next: 0,
                    cum: 0,
                    fresh: 0,
                    pairs: cfg.init_pairs.max(1),
                    ssthresh: cfg.max_pairs,
                    ca_cnt: 0,
                    dupacks: 0,
                    rto: RtoEstimator::new(cfg.rto),
                    rto_deadline: SimTime::ZERO,
                    timer: None,
                    sample: None,
                    retrans: 0,
                    timeouts: 0,
                    fast_rtx: 0,
                    done: false,
                });
            }
            if shard_of(spec.dst, shards) == shard {
                flow_rx[f] = rx.len() as u32;
                rx.push(Recv { expected: 0, total, pending: 0, done_at: 0, dups: 0 });
            }
        }
        ScaleWorld { cfg, nics, senders, flow_sender, flow_rx, rx }
    }
}

type Sim = ShardSim<ScaleWorld>;

/// Transmit every packet the window currently admits. Runs on the sender's
/// shard against sender-owned state only.
fn pump(cfg: &ScaleCfg, s: &mut Sender, nic: &mut NodeNic, mail: &mut Mailbox<Pkt>, now: SimTime) {
    let wnd = 2 * s.pairs;
    let wire = cfg.mss + cfg.hdr;
    while s.next < s.total && s.next < s.cum.saturating_add(wnd) {
        if s.next < s.fresh {
            s.retrans += 1;
        }
        match nic.send(now, s.dst, wire) {
            SendVerdict::InFlight { at_dst } => {
                mail.send(s.src, s.dst, at_dst, Pkt::Data { flow: s.flow, seq: s.next });
            }
            SendVerdict::Dropped(_) => {} // lost at source; timers recover
        }
        if s.sample.is_none() && s.next >= s.fresh {
            s.sample = Some((s.next, now));
        }
        s.next += 1;
        s.fresh = s.fresh.max(s.next);
    }
}

/// (Re-)arm the lazy RTO timer at `s.rto_deadline`.
fn arm_rto(s: &mut Sender, ctx: &mut Ctx<Sim>, flow: u32) {
    let at = s.rto_deadline;
    s.timer = Some(ctx.schedule_at(at, move |sim, ctx| rto_fire(sim, ctx, flow)));
}

/// The armed RTO timer woke up: either slide forward (acks moved the
/// deadline) or declare a timeout and go back N.
fn rto_fire(sim: &mut Sim, ctx: &mut Ctx<Sim>, flow: u32) {
    let w = &mut sim.world;
    let mail = &mut sim.mail;
    let ix = w.flow_sender[flow as usize] as usize;
    let s = &mut w.senders[ix];
    s.timer = None;
    if s.done {
        return;
    }
    let now = ctx.now();
    if now < s.rto_deadline {
        arm_rto(s, ctx, flow);
        return;
    }
    // Timeout: multiplicative decrease to one pair, go-back-N, backoff.
    s.timeouts += 1;
    s.rto.backoff();
    s.ssthresh = (s.pairs / 2).max(1);
    s.pairs = 1;
    s.ca_cnt = 0;
    s.dupacks = 0;
    s.next = s.cum;
    s.sample = None;
    let nic = &mut w.nics[local_ix(s.src, mail.shards())];
    pump(&w.cfg, s, nic, mail, now);
    s.rto_deadline = now + s.rto.current();
    arm_rto(s, ctx, flow);
}

/// First packet of a flow: arm the timer and open the window.
fn start_flow(sim: &mut Sim, ctx: &mut Ctx<Sim>, flow: u32) {
    let w = &mut sim.world;
    let mail = &mut sim.mail;
    let ix = w.flow_sender[flow as usize] as usize;
    let s = &mut w.senders[ix];
    let now = ctx.now();
    let nic = &mut w.nics[local_ix(s.src, mail.shards())];
    pump(&w.cfg, s, nic, mail, now);
    s.rto_deadline = now + s.rto.current();
    arm_rto(s, ctx, flow);
}

/// A data packet cleared the receiver's downlink at `t_d`. Go-back-N
/// receive discipline: in-order is consumed, anything else is discarded
/// and triggers an immediate (dup)ack.
fn recv_data(sim: &mut Sim, flow: u32, seq: u32, node: u32, t_d: SimTime) {
    let w = &mut sim.world;
    let mail = &mut sim.mail;
    let ack_every = w.cfg.ack_every;
    let ack_bytes = w.cfg.ack_bytes;
    let src_node = w.cfg.flows[flow as usize].src;
    let r = &mut w.rx[w.flow_rx[flow as usize] as usize];
    let mut ack_now = false;
    if seq == r.expected && r.done_at == 0 {
        r.expected += 1;
        r.pending += 1;
        if r.expected == r.total {
            r.done_at = t_d.as_nanos();
            ack_now = true;
        } else if r.pending >= ack_every {
            ack_now = true;
        }
    } else {
        // Duplicate, out-of-order, or post-completion straggler.
        r.dups += 1;
        ack_now = true;
    }
    if ack_now {
        r.pending = 0;
        let cum = r.expected;
        let nic = &mut w.nics[local_ix(node, mail.shards())];
        if let SendVerdict::InFlight { at_dst } = nic.send(t_d, src_node, ack_bytes) {
            mail.send(node, src_node, at_dst, Pkt::Ack { flow, cum });
        }
    }
}

/// An ack cleared the sender's downlink at `t_d`.
fn recv_ack(sim: &mut Sim, ctx: &mut Ctx<Sim>, flow: u32, cum: u32, t_d: SimTime) {
    let w = &mut sim.world;
    let mail = &mut sim.mail;
    let ix = w.flow_sender[flow as usize] as usize;
    let s = &mut w.senders[ix];
    if s.done {
        return;
    }
    if cum > s.cum {
        // Fresh progress.
        if let Some((seq, sent)) = s.sample {
            if cum > seq {
                s.rto.sample(t_d.since(sent));
                s.sample = None;
            }
        }
        s.cum = cum;
        s.dupacks = 0;
        if s.next < s.cum {
            s.next = s.cum;
        }
        if s.cum >= s.total {
            s.done = true;
            if let Some(t) = s.timer.take() {
                ctx.cancel(t);
            }
            return;
        }
        // Slow start below ssthresh, +1 pair per window above it.
        if s.pairs < s.ssthresh {
            s.pairs += 1;
        } else {
            s.ca_cnt += 1;
            if s.ca_cnt >= s.pairs {
                s.pairs += 1;
                s.ca_cnt = 0;
            }
        }
        s.pairs = s.pairs.min(w.cfg.max_pairs);
        s.rto_deadline = t_d + s.rto.current();
    } else if cum == s.cum {
        s.dupacks += 1;
        if s.dupacks == 3 {
            // Fast retransmit: halve the window and go back N without
            // waiting for (or backing off) the timer.
            s.fast_rtx += 1;
            s.ssthresh = (s.pairs / 2).max(1);
            s.pairs = s.ssthresh;
            s.ca_cnt = 0;
            s.dupacks = 0;
            s.next = s.cum;
            s.sample = None;
            s.rto_deadline = t_d + s.rto.current();
        }
    } else {
        return; // stale ack from before a go-back-N
    }
    let nic = &mut w.nics[local_ix(s.src, mail.shards())];
    pump(&w.cfg, s, nic, mail, t_d);
}

impl ShardWorld for ScaleWorld {
    type Msg = Pkt;

    fn init(sim: &mut Sim, ctx: &mut Ctx<Sim>) {
        let specs: Vec<(u32, SimTime)> = sim
            .world
            .cfg
            .flows
            .iter()
            .enumerate()
            .filter(|(f, _)| sim.world.flow_sender[*f] != u32::MAX)
            .map(|(f, spec)| (f as u32, spec.start))
            .collect();
        for (flow, start) in specs {
            ctx.schedule_at(start, move |sim, ctx| start_flow(sim, ctx, flow));
        }
    }

    fn deliver(sim: &mut Sim, ctx: &mut Ctx<Sim>, m: Inbound<Pkt>) {
        // Every arrival first clears the destination's downlink FIFO; the
        // merged (at, src, sseq) order makes its occupancy — and so which
        // packet tail-drops during collapse — partition-invariant.
        let wire = match m.msg {
            Pkt::Data { .. } => sim.world.cfg.mss + sim.world.cfg.hdr,
            Pkt::Ack { .. } => sim.world.cfg.ack_bytes,
        };
        let shards = sim.shards();
        let nic = &mut sim.world.nics[local_ix(m.dst, shards)];
        match nic.recv(m.at, wire) {
            Ok(t_d) => match m.msg {
                Pkt::Data { flow, seq } => recv_data(sim, flow, seq, m.dst, t_d),
                Pkt::Ack { flow, cum } => recv_ack(sim, ctx, flow, cum, t_d),
            },
            Err(LinkDrop::QueueFull | LinkDrop::LinkDown) => {
                // Incast collapse in one line: the victim's FIFO said no.
            }
        }
    }
}

/// Aggregated, partition-invariant results of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleResult {
    /// Per-flow completion instant in ns (0 = incomplete at deadline).
    pub flow_done_ns: Vec<u64>,
    /// Flows that completed.
    pub completed: u32,
    /// Completion instant of the last flow to finish.
    pub last_done_ns: u64,
    /// Retransmitted data packets.
    pub retrans: u64,
    /// RTO expiries.
    pub timeouts: u64,
    /// Fast retransmits.
    pub fast_rtx: u64,
    /// Tail drops at downlink FIFOs (the collapse signal).
    pub drops_queue: u64,
    /// Source-side random/fault losses.
    pub drops_loss: u64,
    /// Out-of-order/duplicate packets the go-back-N receivers discarded.
    pub dups: u64,
    /// Events fired (partition-invariant).
    pub events: u64,
    /// Mailbox messages (partition-invariant).
    pub sends: u64,
    /// Barrier rounds that executed an epoch.
    pub epochs: u64,
    /// Messages that crossed a shard boundary (partition-dependent).
    pub cross_shard_pkts: u64,
    /// Timers that took an O(1) wheel insert, summed over shards.
    pub wheel_hits: u64,
    /// Timers that fell to the heap, summed over shards.
    pub heap_falls: u64,
    /// Shards the run actually used.
    pub shards: u32,
    /// The conservative lookahead bound, ns.
    pub lookahead_ns: u64,
    /// Final simulated instant, ns.
    pub end_ns: u64,
    /// True when the deadline stopped the run first.
    pub hit_deadline: bool,
}

/// Run a scale workload on `shards_requested` shards (forced to 1 under
/// the `SIM_CHECK=1` reference discipline).
pub fn run_scale(cfg: ScaleCfg, shards_requested: usize) -> ScaleResult {
    let shards = simcore::effective_shards(shards_requested);
    let lookahead = cfg.net.lookahead();
    let n_flows = cfg.flows.len();
    let cfg = Arc::new(cfg);
    let worlds: Vec<ScaleWorld> =
        (0..shards).map(|s| ScaleWorld::new(s as u32, shards as u32, cfg.clone())).collect();
    let mut shard_cfg = ShardCfg::new(shards, lookahead, cfg.seed);
    shard_cfg.deadline = cfg.deadline;
    let out = run_sharded(shard_cfg, worlds);

    let mut res = ScaleResult {
        flow_done_ns: vec![0; n_flows],
        completed: 0,
        last_done_ns: 0,
        retrans: 0,
        timeouts: 0,
        fast_rtx: 0,
        drops_queue: 0,
        drops_loss: 0,
        dups: 0,
        events: out.events,
        sends: out.sends_total,
        epochs: out.epochs,
        cross_shard_pkts: out.cross_shard_pkts,
        wheel_hits: out.wheel_hits,
        heap_falls: out.heap_falls,
        shards: out.shards,
        lookahead_ns: out.lookahead.as_nanos(),
        end_ns: out.end_time.as_nanos(),
        hit_deadline: out.hit_deadline,
    };
    for w in &out.worlds {
        for (f, &ix) in w.flow_rx.iter().enumerate() {
            if ix != u32::MAX {
                let r = &w.rx[ix as usize];
                res.flow_done_ns[f] = r.done_at;
                res.dups += r.dups;
                if r.done_at > 0 {
                    res.completed += 1;
                    res.last_done_ns = res.last_done_ns.max(r.done_at);
                }
            }
        }
        for s in &w.senders {
            res.retrans += s.retrans;
            res.timeouts += s.timeouts;
            res.fast_rtx += s.fast_rtx;
        }
        for nic in &w.nics {
            res.drops_queue += nic.down.stats.drops_queue;
            res.drops_loss += nic.stats.drops_loss;
        }
    }
    res
}

impl ScaleResult {
    /// Aggregate goodput over the whole run, Mb/s.
    pub fn goodput_mbps(&self, payload_bytes_total: u64) -> f64 {
        if self.last_done_ns == 0 {
            return 0.0;
        }
        (payload_bytes_total * 8) as f64 / self.last_done_ns as f64 * 1e9 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_incast(shards: usize) -> ScaleResult {
        let cfg = ScaleCfg::incast(24, 32 * 1024, 0xC0FFEE);
        run_scale(cfg, shards)
    }

    #[test]
    fn incast_completes_and_collapses() {
        let r = small_incast(1);
        assert_eq!(r.completed, 24, "all flows finish");
        assert!(!r.hit_deadline);
        assert!(r.drops_queue > 0, "synchronized windows must overflow the victim FIFO");
        assert!(r.retrans > 0);
        assert!(r.last_done_ns > 0);
    }

    #[test]
    fn shard_invariant_results() {
        let base = small_incast(1);
        for shards in [2, 4] {
            let got = small_incast(shards);
            assert_eq!(got.flow_done_ns, base.flow_done_ns, "completion times at shards={shards}");
            assert_eq!(got.events, base.events);
            assert_eq!(got.sends, base.sends);
            assert_eq!(got.retrans, base.retrans);
            assert_eq!(got.drops_queue, base.drops_queue);
            assert_eq!(got.dups, base.dups);
            assert_eq!(got.epochs, base.epochs);
            assert_eq!(got.end_ns, base.end_ns);
        }
    }

    #[test]
    fn tenants_complete() {
        let cfg = ScaleCfg::tenants(32, 4, 64 * 1024, Dur::from_micros(50), 7);
        let r1 = run_scale(cfg.clone(), 1);
        assert_eq!(r1.completed, 32);
        let r3 = run_scale(cfg, 3);
        assert_eq!(r3.flow_done_ns, r1.flow_done_ns);
        assert_eq!(r3.events, r1.events);
    }

    #[test]
    fn lossy_run_is_seed_stable() {
        let mut cfg = ScaleCfg::incast(8, 16 * 1024, 42);
        cfg.net.loss_prob = 0.02;
        let a = run_scale(cfg.clone(), 1);
        let b = run_scale(cfg.clone(), 2);
        assert_eq!(a.flow_done_ns, b.flow_done_ns, "loss draws are per-node, partition-invariant");
        assert_eq!(a.drops_loss, b.drops_loss);
        assert_eq!(a.completed, 8);
    }
}
