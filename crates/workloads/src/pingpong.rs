//! The MPBench ping-pong test (paper §4.1.1).
//!
//! Two processes repeatedly exchange a message of a given size, all
//! messages on a single tag. The reported metric is throughput: one-way
//! payload bytes divided by total time.

use mpi_core::{mpirun, MpiCfg};

use crate::zeros;

/// Parameters of one ping-pong run.
#[derive(Debug, Clone, Copy)]
pub struct PingPongCfg {
    /// Message size in bytes.
    pub size: usize,
    /// Number of exchanges (MPBench uses repetitions to stabilize).
    pub iters: u32,
}

/// Result of one ping-pong run.
#[derive(Debug, Clone, Copy)]
pub struct PingPongResult {
    pub size: usize,
    pub iters: u32,
    pub secs: f64,
    /// One-way payload throughput (bytes/second) — the paper's metric.
    pub throughput: f64,
    /// Simulator events fired during the run (self-metering, see
    /// `bench-harness`).
    pub events: u64,
    /// Runtime driver↔process handoffs performed (self-metering).
    pub handoffs: u64,
    /// Wakes coalesced away by the runtime fast path (self-metering).
    pub wakes_coalesced: u64,
    /// Packet trains emitted through the burst path (self-metering).
    pub bursts_total: u64,
    /// Packets fused inside those trains (self-metering).
    pub pkts_fused: u64,
    /// Timers that took the O(1) wheel insert (self-metering).
    pub wheel_hits: u64,
    /// Timers beyond the wheel horizon (heap fallback; self-metering).
    pub heap_falls: u64,
    /// Aggregate SCTP association stats (per-path packet balance, rescue
    /// probes, spurious marks — the CMT scheduler's observables). Zero for
    /// TCP runs.
    pub sctp: transport::sctp::AssocStats,
    /// Network-wide counters (loss/queue/down drop taxonomy).
    pub net: netsim::NetStats,
}

/// Run the ping-pong between ranks 0 and 1 of a 2-process job.
pub fn run(mpi_cfg: MpiCfg, cfg: PingPongCfg) -> PingPongResult {
    assert!(mpi_cfg.nprocs >= 2);
    let report = mpirun(mpi_cfg, move |mpi| {
        let data = zeros(cfg.size);
        match mpi.rank() {
            0 => {
                for _ in 0..cfg.iters {
                    mpi.send(1, 0, data.clone());
                    let (_, msg) = mpi.recv(Some(1), Some(0));
                    debug_assert_eq!(msg.len, cfg.size);
                }
            }
            1 => {
                for _ in 0..cfg.iters {
                    let (_, msg) = mpi.recv(Some(0), Some(0));
                    debug_assert_eq!(msg.len, cfg.size);
                    mpi.send(0, 0, data.clone());
                }
            }
            _ => {}
        }
    });
    let secs = report.secs();
    PingPongResult {
        size: cfg.size,
        iters: cfg.iters,
        secs,
        // One-way payload bytes transferred per second of round-trip time:
        // iters messages of `size` in each direction; MPBench counts the
        // one-way volume over the elapsed time.
        throughput: (cfg.size as f64 * cfg.iters as f64) / secs,
        events: report.events,
        handoffs: report.handoffs,
        wakes_coalesced: report.wakes_coalesced,
        bursts_total: report.bursts_total,
        pkts_fused: report.pkts_fused,
        wheel_hits: report.wheel_hits,
        heap_falls: report.heap_falls,
        sctp: report.sctp,
        net: report.net,
    }
}

/// Parameters of one one-way bulk stream run.
#[derive(Debug, Clone, Copy)]
pub struct StreamCfg {
    /// Message size in bytes.
    pub size: usize,
    /// Number of back-to-back messages.
    pub count: u32,
}

/// One-way bulk stream between ranks 0 and 1: rank 0 sends `count`
/// messages back to back, rank 1 drains them and returns a single
/// zero-length completion ack. Unlike the strict ping-pong, successive
/// messages pipeline — per-message middleware costs overlap wire time, so
/// the measured rate reflects path capacity, which is what a CMT stripe
/// multiplies. Throughput is payload bytes over total time.
pub fn run_stream(mpi_cfg: MpiCfg, cfg: StreamCfg) -> PingPongResult {
    assert!(mpi_cfg.nprocs >= 2);
    let report = mpirun(mpi_cfg, move |mpi| {
        let data = zeros(cfg.size);
        match mpi.rank() {
            0 => {
                for _ in 0..cfg.count {
                    mpi.send(1, 0, data.clone());
                }
                let (_, ack) = mpi.recv(Some(1), Some(1));
                debug_assert_eq!(ack.len, 0);
            }
            1 => {
                for _ in 0..cfg.count {
                    let (_, msg) = mpi.recv(Some(0), Some(0));
                    debug_assert_eq!(msg.len, cfg.size);
                }
                mpi.send(0, 1, zeros(0));
            }
            _ => {}
        }
    });
    let secs = report.secs();
    PingPongResult {
        size: cfg.size,
        iters: cfg.count,
        secs,
        throughput: (cfg.size as f64 * cfg.count as f64) / secs,
        events: report.events,
        handoffs: report.handoffs,
        wakes_coalesced: report.wakes_coalesced,
        bursts_total: report.bursts_total,
        pkts_fused: report.pkts_fused,
        wheel_hits: report.wheel_hits,
        heap_falls: report.heap_falls,
        sctp: report.sctp,
        net: report.net,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_pipelines_past_pingpong() {
        let pp = run(MpiCfg::sctp(2, 0.0), PingPongCfg { size: 64 * 1024, iters: 10 });
        let st = run_stream(MpiCfg::sctp(2, 0.0), StreamCfg { size: 64 * 1024, count: 20 });
        assert!(
            st.throughput > pp.throughput,
            "one-way stream should beat strict alternation: {} vs {}",
            st.throughput,
            pp.throughput
        );
    }

    #[test]
    fn throughput_is_positive_and_size_monotone_at_top() {
        let small = run(MpiCfg::tcp(2, 0.0), PingPongCfg { size: 1024, iters: 10 });
        let big = run(MpiCfg::tcp(2, 0.0), PingPongCfg { size: 131072, iters: 10 });
        assert!(small.throughput > 0.0);
        assert!(
            big.throughput > small.throughput,
            "larger messages amortize per-message cost: {} vs {}",
            big.throughput,
            small.throughput
        );
    }

    #[test]
    fn sctp_and_tcp_both_complete_under_loss() {
        for cfg in [MpiCfg::tcp(2, 0.01), MpiCfg::sctp(2, 0.01)] {
            let r = run(cfg.with_seed(5), PingPongCfg { size: 30 * 1024, iters: 5 });
            assert!(r.secs > 0.0);
        }
    }
}
