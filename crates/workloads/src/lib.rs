//! `workloads` — the programs the paper evaluates.
//!
//! * [`pingpong`] — the MPBench ping-pong test (Figure 8, Table 1);
//! * [`farm`] — the Bulk Processor Farm manager/worker program
//!   (Figures 10–12);
//! * [`nas`] — synthetic kernels reproducing the communication patterns of
//!   the NAS Parallel Benchmarks the paper runs (Figure 9);
//! * [`mixed`] — the farm with mixed task sizes, the RFC 8260 interleaving
//!   study (sender-side HOL blocking);
//! * [`media`] — a deadline-driven frame source on the raw SCTP API, the
//!   PR-SCTP (RFC 3758) study.
//!
//! All workloads except [`media`] are plain functions over
//! [`mpi_core::Mpi`], runnable under [`mpi_core::mpirun`] on either
//! transport; [`media`] drives the raw `transport::sctp` socket API.

pub mod farm;
pub mod media;
pub mod mixed;
pub mod nas;
pub mod pingpong;
pub mod scale;

use bytes::Bytes;

/// A shared zero buffer for payloads: slicing it is allocation-free, so
/// workloads can "send N bytes" without per-message allocations.
pub fn zeros(n: usize) -> Bytes {
    use std::sync::OnceLock;
    static ZEROS: OnceLock<Bytes> = OnceLock::new();
    const CAP: usize = 4 << 20;
    let z = ZEROS.get_or_init(|| Bytes::from(vec![0u8; CAP]));
    assert!(n <= CAP, "payload over {CAP} bytes; raise the cap");
    z.slice(0..n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_cheap_and_sized() {
        let a = zeros(1000);
        let b = zeros(1000);
        assert_eq!(a.len(), 1000);
        assert_eq!(a.as_ptr(), b.as_ptr(), "slices share one allocation");
        assert!(zeros(0).is_empty());
    }
}
