//! Workload-level invariants across randomized configurations.

use mpi_core::MpiCfg;
use proptest::prelude::*;
use workloads::farm::{run, FarmCfg};
use workloads::pingpong::{run as pp_run, PingPongCfg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The farm always completes exactly `num_tasks` tasks — any worker
    /// count, fanout, task size, transport, or loss pattern.
    #[test]
    fn farm_conservation_of_tasks(
        nprocs in 2u16..6,
        fanout_idx in 0usize..3,
        short in any::<bool>(),
        sctp in any::<bool>(),
        lossy in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let fanout = [1u32, 2, 5][fanout_idx];
        let num_tasks = 40 - (40 % fanout);
        let cfg = FarmCfg {
            num_tasks,
            ..FarmCfg::small(if short { 30 * 1024 } else { 300 * 1024 }, fanout)
        };
        let loss = if lossy { 0.01 } else { 0.0 };
        let m = if sctp { MpiCfg::sctp(nprocs, loss) } else { MpiCfg::tcp(nprocs, loss) };
        let r = run(m.with_seed(seed), cfg);
        prop_assert_eq!(r.tasks_done, num_tasks);
        prop_assert!(r.secs > 0.0);
    }

    /// Ping-pong throughput is finite and positive, and each run is
    /// reproducible from its seed.
    #[test]
    fn pingpong_deterministic(size in 1usize..100_000, seed in 0u64..1000) {
        let cfg = PingPongCfg { size, iters: 3 };
        let a = pp_run(MpiCfg::sctp(2, 0.01).with_seed(seed), cfg);
        let b = pp_run(MpiCfg::sctp(2, 0.01).with_seed(seed), cfg);
        prop_assert!(a.throughput.is_finite() && a.throughput > 0.0);
        prop_assert_eq!(a.secs, b.secs, "same seed, same result");
    }
}
