//! Property tests for the sharded engine's determinism contract, driven
//! through the scale workloads: for ANY topology/workload drawn here, every
//! partition-invariant output must be bit-identical at 1, 2 and 4 shards.
//!
//! This is the end-to-end counterpart of `simcore::shard`'s unit tests —
//! the full stack (per-node NICs, fault-free star network, go-back-N flows,
//! lazy RTOs) rides on the mailbox discipline, so any ordering leak in the
//! engine shows up here as a diverged counter.

use proptest::prelude::*;
use simcore::Dur;
use workloads::scale::{run_scale, FlowSpec, ScaleCfg, ScaleResult};

/// A small random workload: `nodes` nodes, a handful of flows with random
/// endpoints, sizes and start staggers, optional uniform loss.
fn random_cfg() -> impl Strategy<Value = ScaleCfg> {
    (
        2u32..10,                               // nodes
        1usize..6,                              // flows
        0u8..3,                                 // loss selector: 0, 1%, 5%
        any::<u64>(),                           // seed
    )
        .prop_flat_map(|(nodes, n_flows, loss_sel, seed)| {
            let flow = (0u32..nodes, 0u32..nodes, 1u64..(96 * 1024), 0u64..2_000_000u64);
            (
                Just(nodes),
                proptest::collection::vec(flow, n_flows..n_flows + 1),
                Just(loss_sel),
                Just(seed),
            )
        })
        .prop_map(|(nodes, raw_flows, loss_sel, seed)| {
            let flows: Vec<FlowSpec> = raw_flows
                .into_iter()
                .map(|(src, dst, bytes, start_ns)| FlowSpec {
                    src,
                    // Self-flows are rejected by the workload; remap.
                    dst: if dst == src { (dst + 1) % nodes } else { dst },
                    bytes,
                    start: simcore::SimTime::from_nanos(start_ns),
                })
                .collect();
            let mut cfg = ScaleCfg::incast(1, 1, seed); // shape only; replaced below
            cfg.nodes = nodes;
            cfg.net.nodes = nodes;
            cfg.flows = flows;
            cfg.net.loss_prob = match loss_sel {
                0 => 0.0,
                1 => 0.01,
                _ => 0.05,
            };
            // Bound lossy runs: a 5 % loss flow can chain RTO backoffs for
            // a long simulated time; the invariance claim is about equality
            // at a fixed horizon, not completion.
            cfg.deadline = simcore::SimTime::ZERO + Dur::from_secs(30);
            cfg
        })
}

/// The partition-invariant projection of a result: everything except the
/// partition-dependent `cross_shard_pkts` and `shards` fields.
fn invariant_view(r: &ScaleResult) -> (Vec<u64>, u32, u64, u64, u64, u64, u64, u64, u64, u64, u64, bool) {
    (
        r.flow_done_ns.clone(),
        r.completed,
        r.last_done_ns,
        r.retrans,
        r.timeouts,
        r.fast_rtx,
        r.drops_queue,
        r.drops_loss,
        r.dups,
        r.events,
        r.epochs,
        r.hit_deadline,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline determinism contract: shard count is invisible.
    #[test]
    fn shard_count_is_invisible(cfg in random_cfg()) {
        let base = run_scale(cfg.clone(), 1);
        for shards in [2usize, 4] {
            let got = run_scale(cfg.clone(), shards);
            prop_assert_eq!(
                invariant_view(&got),
                invariant_view(&base),
                "diverged at shards={}",
                shards
            );
        }
    }

    /// Same seed twice is bit-identical even on the threaded path (no
    /// wall-clock leakage through the barriers).
    #[test]
    fn threaded_runs_are_reproducible(cfg in random_cfg()) {
        let a = run_scale(cfg.clone(), 4);
        let b = run_scale(cfg, 4);
        prop_assert_eq!(invariant_view(&a), invariant_view(&b));
        prop_assert_eq!(a.cross_shard_pkts, b.cross_shard_pkts);
    }
}

/// More shards than nodes: the surplus shards own nothing and must ride
/// the barriers without deadlocking or diverging.
#[test]
fn more_shards_than_nodes_is_benign() {
    let cfg = ScaleCfg::incast(3, 8 * 1024, 99); // 4 nodes
    let base = run_scale(cfg.clone(), 1);
    let wide = run_scale(cfg, 7);
    assert_eq!(invariant_view(&wide), invariant_view(&base));
    assert_eq!(wide.completed, 3);
}

/// Zero-latency topologies admit no conservative window and are rejected
/// loudly rather than silently mis-simulated.
#[test]
#[should_panic(expected = "not shardable")]
fn zero_latency_topology_is_rejected() {
    let mut cfg = ScaleCfg::incast(2, 1024, 1);
    cfg.net.link.prop_delay = Dur::ZERO;
    cfg.net.switch_latency = Dur::ZERO;
    cfg.net.min_wire_bytes = 0;
    let _ = run_scale(cfg, 2);
}
