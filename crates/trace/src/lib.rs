//! Flight recorder: a deterministic trace-capture subsystem for the
//! simulated cluster.
//!
//! The tracer is a shared handle (`Tracer`) installed into the scheduler
//! context at runtime startup. Instrumentation hooks throughout `netsim`,
//! `transport`, and `core` emit structured [`Event`]s into a preallocated
//! overwrite-oldest ring buffer ([`ring::Ring`]); congestion-window events
//! are additionally folded into an in-memory time-series store
//! ([`series::SeriesStore`]).
//!
//! Three sinks drain a finished capture:
//! - [`TraceDump::write_pcapng`] — a dissectable capture of the simulated
//!   wire (raw IPv4 frames carrying real SCTP chunks / TCP segments, one
//!   interface block per link),
//! - [`TraceDump::write_jsonl`] — one JSON object per event, consumed by
//!   the analyzer binary,
//! - the time-series store itself, cloned out for in-process consumers.
//!
//! **Zero-cost-when-off, side-effect-free-when-on.** Hooks are guarded by a
//! cheap `Option` check; when tracing they only *read* simulation state and
//! never touch the RNG, never schedule events, and never take a lock the
//! simulation also takes. Figure outputs are therefore bit-identical with
//! tracing on or off — enforced by a proptest the same way SIM_CHECK
//! enforces discipline equivalence.

pub mod analyze;
pub mod json;
pub mod jsonl;
pub mod pcapng;
pub mod ring;
pub mod series;

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use ring::Ring;
use series::{SeriesKey, SeriesPoint, SeriesStore};

/// Default ring capacity (records) when `TRACE_CAP` is unset.
pub const DEFAULT_CAP: usize = 1 << 20;
/// Default per-frame snap length (bytes) when `TRACE_SNAP` is unset.
/// Headers plus the first chunk are what the dissector and the analyzer
/// need; full payload capture is available with `TRACE_SNAP=0`.
pub const DEFAULT_SNAP: usize = 192;

/// Protocol discriminant kept to one byte so events stay small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto8 {
    Tcp,
    Sctp,
}

impl Proto8 {
    pub fn as_str(self) -> &'static str {
        match self {
            Proto8::Tcp => "tcp",
            Proto8::Sctp => "sctp",
        }
    }

    pub fn code(self) -> u8 {
        match self {
            Proto8::Tcp => 0,
            Proto8::Sctp => 1,
        }
    }
}

/// Why a packet (or train member) never reached the far side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Random wire loss (Bernoulli).
    Loss,
    /// Tail-dropped at a full link queue.
    QueueFull,
    /// Interface administratively down.
    LinkDown,
}

impl DropKind {
    pub fn as_str(self) -> &'static str {
        match self {
            DropKind::Loss => "loss",
            DropKind::QueueFull => "queue",
            DropKind::LinkDown => "down",
        }
    }
}

/// Coarse packet classification for the analyzer; chunk-level detail lives
/// in the serialized frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktKind {
    /// Carries payload (SCTP DATA chunks / TCP payload bytes).
    Data,
    /// Pure SACK.
    Sack,
    /// Pure window/ACK update (TCP).
    Ack,
    /// Handshake, heartbeat, shutdown, probes.
    Ctl,
}

impl PktKind {
    pub fn as_str(self) -> &'static str {
        match self {
            PktKind::Data => "data",
            PktKind::Sack => "sack",
            PktKind::Ack => "ack",
            PktKind::Ctl => "ctl",
        }
    }
}

/// The network's verdict on an offered packet, captured at send time (the
/// simulation decides synchronously, so send and fate are one event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PktVerdict {
    /// Will arrive at the destination at `at_ns` (virtual clock).
    Deliver { at_ns: u64 },
    Drop(DropKind),
}

#[derive(Debug, Clone)]
pub struct PktEv {
    pub src_host: u16,
    pub src_if: u8,
    pub dst_host: u16,
    pub dst_if: u8,
    pub proto: Proto8,
    pub kind: PktKind,
    /// Wire bytes including the IP header.
    pub wire_len: u32,
    pub verdict: PktVerdict,
    /// First TSN (SCTP) or first sequence byte (TCP) of the payload; 0 for
    /// payload-free packets.
    pub tsn: u64,
    /// Payload extent: DATA-chunk count (SCTP) or payload bytes (TCP).
    pub ntsn: u32,
    /// Stream id of the first DATA chunk, -1 when not applicable.
    pub stream: i32,
    /// Serialized on-wire frame (raw IPv4), snapped to the tracer's
    /// snaplen. Empty when frame capture was skipped.
    pub frame: Vec<u8>,
    /// Full length of the serialized frame before snapping. May differ
    /// from `wire_len` by a few bytes of real-header padding (the
    /// simulation models unpadded TCP option sizes).
    pub frame_orig_len: u32,
}

#[derive(Debug, Clone, Copy)]
pub struct CwndEv {
    pub proto: Proto8,
    pub host: u16,
    pub peer: u16,
    pub path: u8,
    pub cwnd: u64,
    pub ssthresh: u64,
    pub flight: u64,
}

#[derive(Debug, Clone, Copy)]
pub struct RtoArmEv {
    pub proto: Proto8,
    pub host: u16,
    pub peer: u16,
    /// Destination path the armed timer guards (0 for TCP).
    pub path: u8,
    pub rto_ns: u64,
    /// -1 until the estimator has a first sample.
    pub srtt_ns: i64,
    pub rttvar_ns: i64,
}

#[derive(Debug, Clone, Copy)]
pub struct RtoFireEv {
    pub proto: Proto8,
    pub host: u16,
    pub peer: u16,
    /// Destination path penalized by the expiry (0 for TCP).
    pub path: u8,
    /// Exponential-backoff shift in effect when the timer fired.
    pub backoff: u32,
    /// Bytes (TCP) or chunks (SCTP) marked for retransmission.
    pub marked: u32,
}

#[derive(Debug, Clone, Copy)]
pub struct FastRtxEv {
    pub proto: Proto8,
    pub host: u16,
    pub peer: u16,
    /// Destination path entering fast recovery (0 for TCP).
    pub path: u8,
    /// First TSN / sequence byte entering fast retransmit.
    pub tsn: u64,
    pub count: u32,
}

/// Which side of the association a head-of-line block was observed on.
///
/// Receiver-side blocks (`Rcv`) are the classic per-stream reassembly
/// stall: a gap in the TSN space holds completed messages back. Sender-side
/// blocks (`Snd`) only exist without RFC 8260 interleaving: a large message
/// monopolizes the single outbound FIFO and queues behind it grow on other
/// streams. The I-DATA experiments split HOL accounting on this axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HolSide {
    /// Sender-side: another stream's message occupies the outbound queue.
    Snd,
    /// Receiver-side: reassembly/ordering stall at the receive buffer.
    Rcv,
}

impl HolSide {
    /// Stable short name used by the JSONL sink and the analyzer.
    pub fn as_str(self) -> &'static str {
        match self {
            HolSide::Snd => "snd",
            HolSide::Rcv => "rcv",
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub struct HolEv {
    pub host: u16,
    pub peer: u16,
    pub stream: u16,
    /// Sender- or receiver-side block (see [`HolSide`]).
    pub side: HolSide,
}

#[derive(Debug, Clone, Copy)]
pub struct HolEndEv {
    pub host: u16,
    pub peer: u16,
    pub stream: u16,
    /// Sender- or receiver-side block (see [`HolSide`]).
    pub side: HolSide,
    pub dur_ns: u64,
    /// Messages released to the application when the block cleared.
    pub released: u32,
}

#[derive(Debug, Clone, Copy)]
pub struct MpiPostEv {
    pub rank: u16,
    /// -1 = ANY_SOURCE.
    pub src: i32,
    /// -1 = ANY_TAG.
    pub tag: i32,
    pub cxt: u32,
    /// True when an already-arrived unexpected message satisfied the post.
    pub matched: bool,
}

#[derive(Debug, Clone)]
pub struct MpiMatchEv {
    pub rank: u16,
    pub src: u16,
    pub tag: i32,
    pub cxt: u32,
    pub len: u64,
    /// Envelope kind as named by the RPI ("eager", "rndv", ...).
    pub kind: &'static str,
    /// True when the envelope matched a posted receive; false when it was
    /// parked on the unexpected queue.
    pub posted: bool,
}

/// What a fault-plane transition did (see `netsim::fault`). Each variant is
/// one edge of a scripted or stochastic fault model; edges are emitted at
/// the first packet offer that observes the new state, so a window with no
/// traffic inside it produces no events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Gilbert–Elliott chain entered the bad (bursty-loss) state.
    GeBad,
    /// Gilbert–Elliott chain returned to the good state.
    GeGood,
    /// A scheduled link flap window opened (path drops everything).
    FlapDown,
    /// A scheduled link flap window closed (path carries traffic again).
    FlapUp,
    /// A bandwidth-degradation window opened.
    DegradeOn,
    /// A bandwidth-degradation window closed.
    DegradeOff,
}

impl FaultKind {
    /// Stable short name used by the JSONL sink and the analyzer.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::GeBad => "ge_bad",
            FaultKind::GeGood => "ge_good",
            FaultKind::FlapDown => "flap_down",
            FaultKind::FlapUp => "flap_up",
            FaultKind::DegradeOn => "degrade_on",
            FaultKind::DegradeOff => "degrade_off",
        }
    }
}

/// A fault-plane state transition (emitted by `netsim` when a fault rule
/// changes state). `rule` is the rule's index within its kind's list in the
/// `FaultPlan`; `host`/`iface` are -1 when the rule's scope covers all
/// hosts/interfaces.
#[derive(Debug, Clone, Copy)]
pub struct FaultEv {
    pub kind: FaultKind,
    pub rule: u32,
    pub host: i32,
    pub iface: i32,
}

#[derive(Debug, Clone, Copy)]
pub struct LinkDropEv {
    pub src_host: u16,
    pub src_if: u8,
    pub dst_host: u16,
    pub wire_bytes: u32,
    pub reason: DropKind,
    /// Sender-side uplink backlog (ns of serialization time queued) at the
    /// moment of the drop — distinguishes "unlucky" from "congested".
    pub backlog_ns: u64,
}

#[derive(Debug, Clone)]
pub enum Event {
    Pkt(PktEv),
    LinkDrop(LinkDropEv),
    Cwnd(CwndEv),
    RtoArm(RtoArmEv),
    RtoFire(RtoFireEv),
    FastRtx(FastRtxEv),
    HolBegin(HolEv),
    HolEnd(HolEndEv),
    MpiPost(MpiPostEv),
    MpiMatch(MpiMatchEv),
    Fault(FaultEv),
}

/// One recorded event with its virtual-clock timestamp and a capture-order
/// sequence number (ties on `t_ns` are common; `seq` keeps order total).
#[derive(Debug, Clone)]
pub struct Rec {
    pub t_ns: u64,
    pub seq: u64,
    pub ev: Event,
}

/// Clock state of one open HOL episode: blocked time accumulated so far
/// plus the moment the clock last (re)started — `None` while the episode is
/// frozen by a sender stall window (see [`Tracer::hol_snd_stall`]).
#[derive(Debug, Clone, Copy)]
struct HolClock {
    acc_ns: u64,
    running_since: Option<u64>,
}

impl HolClock {
    fn settle(&self, t_ns: u64) -> u64 {
        self.acc_ns + self.running_since.map_or(0, |s| t_ns.saturating_sub(s))
    }
}

#[derive(Debug)]
struct Inner {
    ring: Ring,
    seq: u64,
    series: SeriesStore,
    /// (observing host, peer host, stream, side) → episode clock.
    hol_open: HashMap<(u16, u16, u16, HolSide), HolClock>,
    /// (host, peer) pairs whose sender is currently transmission-stalled
    /// (cwnd/rwnd/RTO): their open `Snd` episodes have frozen clocks.
    hol_snd_stalled: HashSet<(u16, u16)>,
    snaplen: usize,
    hosts: u16,
    ifaces: u8,
}

/// Shared flight-recorder handle. Clones are cheap (Arc). The mutex is
/// uncontended in practice: the simulation runs exactly one runnable
/// process at a time, so hooks never block each other.
#[derive(Debug, Clone)]
pub struct Tracer(Arc<Mutex<Inner>>);

impl Tracer {
    pub fn new(cap: usize, snaplen: usize) -> Tracer {
        Tracer(Arc::new(Mutex::new(Inner {
            ring: Ring::new(cap),
            seq: 0,
            series: SeriesStore::default(),
            hol_open: HashMap::new(),
            hol_snd_stalled: HashSet::new(),
            snaplen: if snaplen == 0 { usize::MAX } else { snaplen },
            hosts: 0,
            ifaces: 0,
        })))
    }

    /// `TRACE=1` turns the recorder on; `TRACE_CAP` / `TRACE_SNAP` tune it.
    pub fn env_enabled() -> bool {
        std::env::var("TRACE").map(|v| v == "1").unwrap_or(false)
    }

    pub fn from_env() -> Option<Tracer> {
        if !Self::env_enabled() {
            return None;
        }
        let cap = std::env::var("TRACE_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_CAP);
        let snap = std::env::var("TRACE_SNAP").ok().and_then(|v| v.parse().ok()).unwrap_or(DEFAULT_SNAP);
        Some(Tracer::new(cap, snap))
    }

    /// Record the simulated topology so the pcapng sink can emit one
    /// interface block per link up front.
    pub fn set_topology(&self, hosts: u16, ifaces: u8) {
        let mut g = self.0.lock().unwrap();
        g.hosts = hosts;
        g.ifaces = ifaces;
    }

    /// Frame snap length for hooks that serialize wire bytes.
    pub fn snaplen(&self) -> usize {
        self.0.lock().unwrap().snaplen
    }

    pub fn emit(&self, t_ns: u64, ev: Event) {
        let mut g = self.0.lock().unwrap();
        g.seq += 1;
        let seq = g.seq;
        if let Event::Cwnd(c) = &ev {
            let key = SeriesKey { proto: c.proto.code(), host: c.host, peer: c.peer, path: c.path };
            let pt = SeriesPoint { t_ns, cwnd: c.cwnd, ssthresh: c.ssthresh, flight: c.flight };
            g.series.push(key, pt);
        }
        g.ring.push(Rec { t_ns, seq, ev });
    }

    /// Track per-stream head-of-line state on one side of an association.
    /// The hook reports the stream's current blocked/clear status after
    /// each delivery (receiver side) or queue transition (sender side); the
    /// tracer turns edges into HolBegin/HolEnd events and accounts the
    /// blocked duration per (host, peer, stream, side).
    pub fn hol_update(
        &self,
        t_ns: u64,
        host: u16,
        peer: u16,
        stream: u16,
        side: HolSide,
        blocked: bool,
        released: u32,
    ) {
        let key = (host, peer, stream, side);
        let mut g = self.0.lock().unwrap();
        match (blocked, g.hol_open.contains_key(&key)) {
            (true, false) => {
                // A sender-side episode born inside a stall window starts
                // with its clock frozen: until the window can actually move
                // bytes, no scheduling decision is responsible for the wait.
                let frozen = side == HolSide::Snd && g.hol_snd_stalled.contains(&(host, peer));
                g.hol_open.insert(
                    key,
                    HolClock { acc_ns: 0, running_since: (!frozen).then_some(t_ns) },
                );
                g.seq += 1;
                let seq = g.seq;
                g.ring.push(Rec { t_ns, seq, ev: Event::HolBegin(HolEv { host, peer, stream, side }) });
            }
            (false, true) => {
                let clock = g.hol_open.remove(&key).unwrap();
                g.seq += 1;
                let seq = g.seq;
                let dur_ns = clock.settle(t_ns);
                g.ring.push(Rec {
                    t_ns,
                    seq,
                    ev: Event::HolEnd(HolEndEv { host, peer, stream, side, dur_ns, released }),
                });
            }
            _ => {}
        }
    }

    /// Gate the sender-side HOL clocks of one association on transmission
    /// progress. `stalled = true` means the sender's queues are nonempty
    /// but nothing could be put on the wire (cwnd full, zero peer rwnd, an
    /// RTO recovery in flight): every open `Snd` episode toward `peer`
    /// freezes, because no stream scheduler can route around a closed
    /// window — charging that time to head-of-line blocking would let one
    /// 1 s RTO silence, multiplied by every stream whose head happened to
    /// be waiting, swamp the scheduling signal the metric exists to
    /// expose. `stalled = false` (a fragment reached the wire) restarts
    /// the frozen clocks. Blocked *duration* is affected; the
    /// `HolBegin`/`HolEnd` edge timestamps are not.
    pub fn hol_snd_stall(&self, t_ns: u64, host: u16, peer: u16, stalled: bool) {
        let mut g = self.0.lock().unwrap();
        if stalled {
            if !g.hol_snd_stalled.insert((host, peer)) {
                return;
            }
        } else if !g.hol_snd_stalled.remove(&(host, peer)) {
            return;
        }
        for ((h, p, _, side), clock) in g.hol_open.iter_mut() {
            if *h != host || *p != peer || *side != HolSide::Snd {
                continue;
            }
            if stalled {
                if let Some(s) = clock.running_since.take() {
                    clock.acc_ns += t_ns.saturating_sub(s);
                }
            } else if clock.running_since.is_none() {
                clock.running_since = Some(t_ns);
            }
        }
    }

    /// Snapshot the capture. Still-open HOL blocks are closed at the given
    /// end-of-run timestamp so their time is not silently lost.
    pub fn dump(&self, end_ns: u64) -> TraceDump {
        let mut g = self.0.lock().unwrap();
        let mut open: Vec<((u16, u16, u16, HolSide), HolClock)> = g.hol_open.drain().collect();
        open.sort_unstable_by_key(|&(key, _)| key);
        for ((host, peer, stream, side), clock) in open {
            g.seq += 1;
            let seq = g.seq;
            let dur_ns = clock.settle(end_ns);
            g.ring.push(Rec {
                t_ns: end_ns,
                seq,
                ev: Event::HolEnd(HolEndEv { host, peer, stream, side, dur_ns, released: 0 }),
            });
        }
        TraceDump {
            hosts: g.hosts,
            ifaces: g.ifaces,
            dropped: g.ring.dropped(),
            recs: g.ring.to_vec(),
            series: g.series.clone(),
        }
    }
}

/// A finished capture, ready for the sinks.
#[derive(Debug, Clone)]
pub struct TraceDump {
    pub hosts: u16,
    pub ifaces: u8,
    /// Records overwritten in the ring (capture truncated from the front).
    pub dropped: u64,
    pub recs: Vec<Rec>,
    pub series: SeriesStore,
}

impl TraceDump {
    /// pcapng sink: SHB, one IDB per link (host × iface, in id order
    /// `host * ifaces + iface`), then an EPB per captured frame on its
    /// sending interface.
    pub fn write_pcapng(&self) -> Vec<u8> {
        let mut out = pcapng::section_header_block();
        let ifaces = self.ifaces.max(1);
        for h in 0..self.hosts {
            for i in 0..ifaces {
                out.extend_from_slice(&pcapng::interface_description_block(&format!("h{h}i{i}")));
            }
        }
        for rec in &self.recs {
            if let Event::Pkt(p) = &rec.ev {
                if p.frame.is_empty() {
                    continue;
                }
                let iface = p.src_host as u32 * ifaces as u32 + p.src_if as u32;
                out.extend_from_slice(&pcapng::enhanced_packet_block(iface, rec.t_ns, p.frame_orig_len, &p.frame));
            }
        }
        out
    }

    /// JSONL sink: one event object per line, preceded by a header line
    /// carrying topology and truncation metadata.
    pub fn write_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.recs.len() * 96 + 128);
        out.push_str(&format!(
            "{{\"ev\":\"header\",\"hosts\":{},\"ifaces\":{},\"ring_dropped\":{},\"events\":{}}}\n",
            self.hosts,
            self.ifaces,
            self.dropped,
            self.recs.len()
        ));
        for rec in &self.recs {
            jsonl::render_record(&mut out, rec);
            out.push('\n');
        }
        out
    }

    /// Aggregate head-of-line accounting by side, computed from the
    /// capture's `HolEnd` records (each carries its own duration, and
    /// [`Tracer::dump`] closes still-open blocks, so no time is lost).
    /// The bench binaries assert on this in-process — e.g. "I-DATA plus a
    /// non-FIFO scheduler strictly reduces sender-side blocked time".
    pub fn hol_totals(&self) -> HolTotals {
        let mut t = HolTotals::default();
        for rec in &self.recs {
            if let Event::HolEnd(h) = &rec.ev {
                match h.side {
                    HolSide::Snd => {
                        t.snd_blocks += 1;
                        t.snd_ns += h.dur_ns;
                    }
                    HolSide::Rcv => {
                        t.rcv_blocks += 1;
                        t.rcv_ns += h.dur_ns;
                    }
                }
            }
        }
        t
    }
}

/// Per-side HOL roll-up of one capture (see [`TraceDump::hol_totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HolTotals {
    /// Sender-side blocks (outbound queue monopolized by another stream).
    pub snd_blocks: u64,
    /// Total sender-side blocked time, ns.
    pub snd_ns: u64,
    /// Receiver-side blocks (reassembly stalled behind a missing TSN).
    pub rcv_blocks: u64,
    /// Total receiver-side blocked time, ns.
    pub rcv_ns: u64,
}

/// Merge per-shard captures (one ring per worker of the sharded engine)
/// into a single chronological dump at sink time.
///
/// Records are ordered by `(t_ns, shard index, seq)` — the same
/// time-then-owner-then-sequence discipline the engine uses for cross-shard
/// delivery — and re-sequenced globally, so the merged file is byte-stable
/// for a given set of inputs and a sequential (1-shard) capture merges to
/// itself. Ring truncation (`dropped`) sums; per-shard drops are still
/// visible in the inputs if a caller needs them.
pub fn merge_dumps(dumps: Vec<TraceDump>) -> TraceDump {
    let mut hosts = 0u16;
    let mut ifaces = 0u8;
    let mut dropped = 0u64;
    let mut tagged: Vec<(u64, usize, u64, Rec)> = Vec::new();
    let mut series = SeriesStore::default();
    for (shard, d) in dumps.into_iter().enumerate() {
        hosts = hosts.max(d.hosts);
        ifaces = ifaces.max(d.ifaces);
        dropped += d.dropped;
        for r in d.recs {
            tagged.push((r.t_ns, shard, r.seq, r));
        }
        for (key, pts) in d.series.cwnd {
            series.cwnd.entry(key).or_default().extend(pts);
        }
    }
    tagged.sort_by_key(|(t, shard, seq, _)| (*t, *shard, *seq));
    let recs = tagged
        .into_iter()
        .enumerate()
        .map(|(i, (_, _, _, mut r))| {
            r.seq = i as u64 + 1;
            r
        })
        .collect();
    for pts in series.cwnd.values_mut() {
        pts.sort_by_key(|p| p.t_ns);
    }
    TraceDump { hosts, ifaces, dropped, recs, series }
}

thread_local! {
    static RUN_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Attach a human-readable label (e.g. the bench cell label) to traces
/// produced on this thread; the launcher uses it to name sink files.
pub fn set_run_label(label: Option<&str>) {
    RUN_LABEL.with(|l| *l.borrow_mut() = label.map(|s| s.to_string()));
}

pub fn run_label() -> Option<String> {
    RUN_LABEL.with(|l| l.borrow().clone())
}

/// File-system-safe form of a run label.
pub fn sanitize_label(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '.' || c == '-' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hol_edges_pair_up() {
        let tr = Tracer::new(1024, 64);
        tr.hol_update(100, 1, 0, 3, HolSide::Rcv, true, 0);
        tr.hol_update(150, 1, 0, 3, HolSide::Rcv, true, 0); // still blocked: no new edge
        tr.hol_update(700, 1, 0, 3, HolSide::Rcv, false, 2);
        tr.hol_update(800, 1, 0, 3, HolSide::Rcv, false, 1); // already clear: no edge
        let d = tr.dump(1000);
        assert_eq!(d.recs.len(), 2);
        match (&d.recs[0].ev, &d.recs[1].ev) {
            (Event::HolBegin(b), Event::HolEnd(e)) => {
                assert_eq!((b.host, b.peer, b.stream), (1, 0, 3));
                assert_eq!(b.side, HolSide::Rcv);
                assert_eq!(e.dur_ns, 600);
                assert_eq!(e.released, 2);
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn hol_sides_are_independent() {
        let tr = Tracer::new(64, 64);
        // Same (host, peer, stream) blocked on both sides: two independent
        // begin/end pairs, closed in either order.
        tr.hol_update(100, 1, 0, 3, HolSide::Snd, true, 0);
        tr.hol_update(120, 1, 0, 3, HolSide::Rcv, true, 0);
        tr.hol_update(200, 1, 0, 3, HolSide::Snd, false, 0);
        tr.hol_update(500, 1, 0, 3, HolSide::Rcv, false, 1);
        let d = tr.dump(1000);
        let ends: Vec<(HolSide, u64)> = d
            .recs
            .iter()
            .filter_map(|r| match &r.ev {
                Event::HolEnd(e) => Some((e.side, e.dur_ns)),
                _ => None,
            })
            .collect();
        assert_eq!(ends, vec![(HolSide::Snd, 100), (HolSide::Rcv, 380)]);
    }

    #[test]
    fn hol_totals_split_by_side() {
        let tr = Tracer::new(64, 64);
        tr.hol_update(100, 1, 0, 3, HolSide::Snd, true, 0);
        tr.hol_update(120, 1, 0, 4, HolSide::Rcv, true, 0);
        tr.hol_update(200, 1, 0, 3, HolSide::Snd, false, 0);
        tr.hol_update(500, 1, 0, 4, HolSide::Rcv, false, 1);
        // Still open at dump time: closed at 1000, so 1000-600 rcv ns more.
        tr.hol_update(600, 2, 0, 0, HolSide::Rcv, true, 0);
        let t = tr.dump(1000).hol_totals();
        assert_eq!(t, HolTotals { snd_blocks: 1, snd_ns: 100, rcv_blocks: 2, rcv_ns: 380 + 400 });
    }

    #[test]
    fn dump_closes_open_hol_blocks() {
        let tr = Tracer::new(16, 64);
        tr.hol_update(100, 2, 5, 0, HolSide::Rcv, true, 0);
        let d = tr.dump(400);
        assert_eq!(d.recs.len(), 2);
        match &d.recs[1].ev {
            Event::HolEnd(e) => assert_eq!(e.dur_ns, 300),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn cwnd_events_feed_series() {
        let tr = Tracer::new(16, 64);
        let ev = CwndEv { proto: Proto8::Sctp, host: 0, peer: 1, path: 0, cwnd: 4380, ssthresh: 65535, flight: 0 };
        tr.emit(10, Event::Cwnd(ev));
        tr.emit(20, Event::Cwnd(CwndEv { cwnd: 5840, ..ev }));
        let d = tr.dump(30);
        assert_eq!(d.series.total_points(), 2);
        let key = series::SeriesKey { proto: 1, host: 0, peer: 1, path: 0 };
        assert_eq!(d.series.cwnd[&key][1].cwnd, 5840);
    }

    #[test]
    fn merge_interleaves_shard_dumps_chronologically() {
        let mk = |events: &[(u64, u16)]| {
            let tr = Tracer::new(64, 64);
            for &(t, host) in events {
                tr.emit(t, Event::HolBegin(HolEv { host, peer: 0, stream: 0, side: HolSide::Rcv }));
            }
            tr.dump(10_000)
        };
        // Shard 0 owns even instants, shard 1 odd ones, with one tie at 300.
        let a = mk(&[(100, 0), (300, 0), (400, 0)]);
        let b = mk(&[(250, 1), (300, 1)]);
        let m = merge_dumps(vec![a, b]);
        let got: Vec<(u64, u16)> = m
            .recs
            .iter()
            .map(|r| match &r.ev {
                Event::HolBegin(h) => (r.t_ns, h.host),
                other => panic!("unexpected: {other:?}"),
            })
            .collect();
        // Time-ordered; the tie at 300 resolves to the lower shard first.
        assert_eq!(got, vec![(100, 0), (250, 1), (300, 0), (300, 1), (400, 0)]);
        // Re-sequenced globally, 1..=n.
        assert_eq!(m.recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_of_a_single_dump_is_identity_shaped() {
        let tr = Tracer::new(64, 64);
        tr.emit(10, Event::HolBegin(HolEv { host: 3, peer: 0, stream: 1, side: HolSide::Rcv }));
        tr.emit(20, Event::HolBegin(HolEv { host: 4, peer: 0, stream: 1, side: HolSide::Rcv }));
        let d = tr.dump(100);
        let (hosts, n) = (d.hosts, d.recs.len());
        let m = merge_dumps(vec![d]);
        assert_eq!(m.recs.len(), n);
        assert_eq!(m.hosts, hosts);
        assert!(m.recs.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn run_label_is_thread_local() {
        set_run_label(Some("fig10 task=30720 loss=0.02"));
        assert_eq!(run_label().as_deref(), Some("fig10 task=30720 loss=0.02"));
        assert_eq!(sanitize_label("fig10 task=30720 loss=0.02"), "fig10_task_30720_loss_0.02");
        set_run_label(None);
        assert!(run_label().is_none());
    }
}
