//! In-memory time-series store.
//!
//! Congestion-window transitions are the one event class the analyzer wants
//! as a *curve* rather than a log, so the tracer folds them into a keyed
//! point store as they arrive. Everything is plain data; the store is cloned
//! out wholesale when the run finishes.

use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// 0 = TCP, 1 = SCTP (see `Proto8`).
    pub proto: u8,
    pub host: u16,
    pub peer: u16,
    pub path: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    pub t_ns: u64,
    pub cwnd: u64,
    pub ssthresh: u64,
    pub flight: u64,
}

#[derive(Debug, Clone, Default)]
pub struct SeriesStore {
    pub cwnd: BTreeMap<SeriesKey, Vec<SeriesPoint>>,
}

impl SeriesStore {
    pub fn push(&mut self, key: SeriesKey, pt: SeriesPoint) {
        self.cwnd.entry(key).or_default().push(pt);
    }

    pub fn total_points(&self) -> usize {
        self.cwnd.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_append() {
        let mut s = SeriesStore::default();
        let k = SeriesKey { proto: 1, host: 0, peer: 1, path: 0 };
        s.push(k, SeriesPoint { t_ns: 10, cwnd: 4380, ssthresh: u64::MAX, flight: 0 });
        s.push(k, SeriesPoint { t_ns: 20, cwnd: 5840, ssthresh: u64::MAX, flight: 1460 });
        assert_eq!(s.cwnd[&k].len(), 2);
        assert_eq!(s.total_points(), 2);
    }
}
