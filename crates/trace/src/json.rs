//! Minimal JSON parser, sufficient for the JSONL event log this crate emits
//! and for the BENCH `results/*.json` schema check. No dependencies, no
//! allocations beyond the output value tree.

#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    pub fn get(&self, key: &str) -> Option<&JVal> {
        match self {
            JVal::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().and_then(|n| if n >= 0.0 { Some(n as u64) } else { None })
    }

    pub fn as_i64(&self) -> Option<i64> {
        self.as_f64().map(|n| n as i64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JVal]> {
        match self {
            JVal::Arr(v) => Some(v),
            _ => None,
        }
    }
}

pub fn parse(s: &str) -> Result<JVal, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b't') => self.lit("true", JVal::Bool(true)),
            Some(b'f') => self.lit("false", JVal::Bool(false)),
            Some(b'n') => self.lit("null", JVal::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: JVal) -> Result<JVal, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.i += 1;
        }
        let txt = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "utf8".to_string())?;
        txt.parse::<f64>().map(JVal::Num).map_err(|e| format!("bad number '{txt}': {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("short \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "utf8".to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.i + len).min(self.b.len());
                    out.push_str(std::str::from_utf8(&self.b[self.i..end]).map_err(|_| "utf8".to_string())?);
                    self.i = end;
                }
            }
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JVal::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JVal::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JVal::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_event_line() {
        let v = parse(r#"{"t":1234,"ev":"pkt","src":0,"verdict":"loss","nested":[1,2.5,-3],"ok":true,"none":null}"#).unwrap();
        assert_eq!(v.get("t").unwrap().as_u64(), Some(1234));
        assert_eq!(v.get("ev").unwrap().as_str(), Some("pkt"));
        assert_eq!(v.get("verdict").unwrap().as_str(), Some("loss"));
        assert_eq!(v.get("nested").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("nested").unwrap().as_arr().unwrap()[2].as_i64(), Some(-3));
        assert_eq!(v.get("ok"), Some(&JVal::Bool(true)));
        assert_eq!(v.get("none"), Some(&JVal::Null));
    }

    #[test]
    fn strings_escape() {
        let v = parse(r#"{"k":"a\"b\\c\nd"}"#).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
    }
}
