//! pcapng writer: emits captures of the simulated wire that standard
//! dissectors (wireshark/tshark) open directly.
//!
//! Layout per the pcapng spec (draft-tuexen-opsawg-pcapng): a Section Header
//! Block, one Interface Description Block per simulated link (host NIC →
//! switch), then one Enhanced Packet Block per captured frame, stamped on
//! the *sending* interface. All integers little-endian; every block carries
//! its total length fore and aft. Frames are raw IPv4 (LINKTYPE_RAW), and
//! timestamps are virtual-clock nanoseconds (if_tsresol = 9).

/// LINKTYPE_RAW: packet begins with the raw IPv4/IPv6 header.
pub const LINKTYPE_RAW: u16 = 101;

const BT_SHB: u32 = 0x0A0D_0D0A;
const BT_IDB: u32 = 0x0000_0001;
const BT_EPB: u32 = 0x0000_0006;
const BYTE_ORDER_MAGIC: u32 = 0x1A2B_3C4D;

fn pad4(n: usize) -> usize {
    (4 - n % 4) % 4
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one option TLV (code, length, value, pad-to-4).
fn put_option(out: &mut Vec<u8>, code: u16, val: &[u8]) {
    put_u16(out, code);
    put_u16(out, val.len() as u16);
    out.extend_from_slice(val);
    out.extend(std::iter::repeat(0u8).take(pad4(val.len())));
}

/// Wrap a block body in (type, total_len, body, total_len).
fn block(ty: u32, body: &[u8]) -> Vec<u8> {
    let total = 12 + body.len() as u32;
    let mut out = Vec::with_capacity(total as usize);
    put_u32(&mut out, ty);
    put_u32(&mut out, total);
    out.extend_from_slice(body);
    put_u32(&mut out, total);
    out
}

/// Section Header Block: magic, version 1.0, unknown section length.
pub fn section_header_block() -> Vec<u8> {
    let mut body = Vec::new();
    put_u32(&mut body, BYTE_ORDER_MAGIC);
    put_u16(&mut body, 1); // major
    put_u16(&mut body, 0); // minor
    body.extend_from_slice(&u64::MAX.to_le_bytes()); // section length: unspecified
    block(BT_SHB, &body)
}

/// Interface Description Block for one simulated link, with an `if_name`
/// option and `if_tsresol = 9` (nanosecond timestamps).
pub fn interface_description_block(name: &str) -> Vec<u8> {
    let mut body = Vec::new();
    put_u16(&mut body, LINKTYPE_RAW);
    put_u16(&mut body, 0); // reserved
    put_u32(&mut body, 0); // snaplen: no limit recorded at file level
    put_option(&mut body, 2, name.as_bytes()); // if_name
    put_option(&mut body, 9, &[9u8]); // if_tsresol: 10^-9
    put_option(&mut body, 0, &[]); // opt_endofopt
    block(BT_IDB, &body)
}

/// Enhanced Packet Block: one captured (possibly snapped) frame.
pub fn enhanced_packet_block(iface: u32, t_ns: u64, orig_len: u32, data: &[u8]) -> Vec<u8> {
    let mut body = Vec::new();
    put_u32(&mut body, iface);
    put_u32(&mut body, (t_ns >> 32) as u32);
    put_u32(&mut body, t_ns as u32);
    put_u32(&mut body, data.len() as u32); // captured length
    put_u32(&mut body, orig_len);
    body.extend_from_slice(data);
    body.extend(std::iter::repeat(0u8).take(pad4(data.len())));
    block(BT_EPB, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_multiple_of_four() {
        assert_eq!(section_header_block().len() % 4, 0);
        assert_eq!(interface_description_block("h0i0").len() % 4, 0);
        assert_eq!(interface_description_block("h10i2").len() % 4, 0);
        assert_eq!(enhanced_packet_block(0, 0, 5, &[1, 2, 3, 4, 5]).len() % 4, 0);
    }
}
