//! JSONL sink: one flat JSON object per event line. Field names are short
//! and stable — the analyzer (`bench/src/bin/analyze.rs`) and the tests
//! parse them back with [`crate::json`].

use crate::{Event, PktVerdict, Rec};
use std::fmt::Write;

/// Render one record as a single JSON object (no trailing newline).
pub fn render_record(out: &mut String, rec: &Rec) {
    let t = rec.t_ns;
    let q = rec.seq;
    match &rec.ev {
        Event::Pkt(p) => {
            let (verdict, at) = match p.verdict {
                PktVerdict::Deliver { at_ns } => ("deliver", at_ns),
                PktVerdict::Drop(k) => (k.as_str(), 0),
            };
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"pkt\",\"src\":{},\"sif\":{},\"dst\":{},\"dif\":{},\"proto\":\"{}\",\"kind\":\"{}\",\"len\":{},\"verdict\":\"{verdict}\",\"at\":{at},\"tsn\":{},\"ntsn\":{},\"stream\":{}}}",
                p.src_host, p.src_if, p.dst_host, p.dst_if,
                p.proto.as_str(), p.kind.as_str(), p.wire_len,
                p.tsn, p.ntsn, p.stream
            );
        }
        Event::LinkDrop(d) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"linkdrop\",\"src\":{},\"sif\":{},\"dst\":{},\"len\":{},\"reason\":\"{}\",\"backlog\":{}}}",
                d.src_host, d.src_if, d.dst_host, d.wire_bytes, d.reason.as_str(), d.backlog_ns
            );
        }
        Event::Cwnd(c) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"cwnd\",\"proto\":\"{}\",\"host\":{},\"peer\":{},\"path\":{},\"cwnd\":{},\"ssthresh\":{},\"flight\":{}}}",
                c.proto.as_str(), c.host, c.peer, c.path, c.cwnd, c.ssthresh, c.flight
            );
        }
        Event::RtoArm(r) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"rto_arm\",\"proto\":\"{}\",\"host\":{},\"peer\":{},\"path\":{},\"rto\":{},\"srtt\":{},\"rttvar\":{}}}",
                r.proto.as_str(), r.host, r.peer, r.path, r.rto_ns, r.srtt_ns, r.rttvar_ns
            );
        }
        Event::RtoFire(r) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"rto_fire\",\"proto\":\"{}\",\"host\":{},\"peer\":{},\"path\":{},\"backoff\":{},\"marked\":{}}}",
                r.proto.as_str(), r.host, r.peer, r.path, r.backoff, r.marked
            );
        }
        Event::FastRtx(f) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"fast_rtx\",\"proto\":\"{}\",\"host\":{},\"peer\":{},\"path\":{},\"tsn\":{},\"count\":{}}}",
                f.proto.as_str(), f.host, f.peer, f.path, f.tsn, f.count
            );
        }
        Event::HolBegin(h) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"hol_begin\",\"host\":{},\"peer\":{},\"stream\":{},\"side\":\"{}\"}}",
                h.host, h.peer, h.stream, h.side.as_str()
            );
        }
        Event::HolEnd(h) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"hol_end\",\"host\":{},\"peer\":{},\"stream\":{},\"side\":\"{}\",\"dur\":{},\"released\":{}}}",
                h.host, h.peer, h.stream, h.side.as_str(), h.dur_ns, h.released
            );
        }
        Event::MpiPost(m) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"mpi_post\",\"rank\":{},\"src\":{},\"tag\":{},\"cxt\":{},\"matched\":{}}}",
                m.rank, m.src, m.tag, m.cxt, m.matched
            );
        }
        Event::MpiMatch(m) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"mpi_match\",\"rank\":{},\"src\":{},\"tag\":{},\"cxt\":{},\"len\":{},\"kind\":\"{}\",\"posted\":{}}}",
                m.rank, m.src, m.tag, m.cxt, m.len, m.kind, m.posted
            );
        }
        Event::Fault(f) => {
            let _ = write!(
                out,
                "{{\"t\":{t},\"q\":{q},\"ev\":\"fault\",\"kind\":\"{}\",\"rule\":{},\"host\":{},\"iface\":{}}}",
                f.kind.as_str(), f.rule, f.host, f.iface
            );
        }
    }
}

/// Parse a JSONL document into per-line values, skipping blank lines.
pub fn parse_lines(text: &str) -> Result<Vec<crate::json::JVal>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(crate::json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::*;

    #[test]
    fn every_variant_renders_parseable_json() {
        let recs = vec![
            Rec {
                t_ns: 1,
                seq: 1,
                ev: Event::Pkt(PktEv {
                    src_host: 0,
                    src_if: 1,
                    dst_host: 3,
                    dst_if: 0,
                    proto: Proto8::Sctp,
                    kind: PktKind::Data,
                    wire_len: 1500,
                    verdict: PktVerdict::Drop(DropKind::Loss),
                    tsn: 42,
                    ntsn: 2,
                    stream: 7,
                    frame: vec![1, 2, 3],
                    frame_orig_len: 1500,
                }),
            },
            Rec { t_ns: 2, seq: 2, ev: Event::LinkDrop(LinkDropEv { src_host: 0, src_if: 1, dst_host: 3, wire_bytes: 1500, reason: DropKind::QueueFull, backlog_ns: 900 }) },
            Rec { t_ns: 3, seq: 3, ev: Event::Cwnd(CwndEv { proto: Proto8::Tcp, host: 1, peer: 2, path: 0, cwnd: 2920, ssthresh: 8760, flight: 1460 }) },
            Rec { t_ns: 4, seq: 4, ev: Event::RtoArm(RtoArmEv { proto: Proto8::Sctp, host: 1, peer: 2, path: 1, rto_ns: 1_000_000_000, srtt_ns: -1, rttvar_ns: -1 }) },
            Rec { t_ns: 5, seq: 5, ev: Event::RtoFire(RtoFireEv { proto: Proto8::Sctp, host: 1, peer: 2, path: 2, backoff: 2, marked: 5 }) },
            Rec { t_ns: 6, seq: 6, ev: Event::FastRtx(FastRtxEv { proto: Proto8::Tcp, host: 1, peer: 2, path: 0, tsn: 1460, count: 1 }) },
            Rec { t_ns: 7, seq: 7, ev: Event::HolBegin(HolEv { host: 2, peer: 1, stream: 4, side: HolSide::Snd }) },
            Rec { t_ns: 8, seq: 8, ev: Event::HolEnd(HolEndEv { host: 2, peer: 1, stream: 4, side: HolSide::Rcv, dur_ns: 123, released: 3 }) },
            Rec { t_ns: 9, seq: 9, ev: Event::MpiPost(MpiPostEv { rank: 0, src: -1, tag: 5, cxt: 1, matched: true }) },
            Rec { t_ns: 10, seq: 10, ev: Event::MpiMatch(MpiMatchEv { rank: 0, src: 3, tag: 5, cxt: 1, len: 30720, kind: "eager", posted: false }) },
            Rec { t_ns: 11, seq: 11, ev: Event::Fault(FaultEv { kind: FaultKind::FlapDown, rule: 0, host: -1, iface: 0 }) },
        ];
        let mut text = String::new();
        for r in &recs {
            render_record(&mut text, r);
            text.push('\n');
        }
        let vals = parse_lines(&text).unwrap();
        assert_eq!(vals.len(), recs.len());
        assert_eq!(vals[0].get("verdict").unwrap().as_str(), Some("loss"));
        assert_eq!(vals[0].get("tsn").unwrap().as_u64(), Some(42));
        assert_eq!(vals[6].get("side").unwrap().as_str(), Some("snd"));
        assert_eq!(vals[7].get("side").unwrap().as_str(), Some("rcv"));
        assert_eq!(vals[7].get("dur").unwrap().as_u64(), Some(123));
        assert_eq!(vals[9].get("posted"), Some(&crate::json::JVal::Bool(false)));
        assert_eq!(vals[10].get("kind").unwrap().as_str(), Some("flap_down"));
        assert_eq!(vals[10].get("host").unwrap().as_i64(), Some(-1));
        // The frame never leaks into the JSONL sink (it lives in the pcapng).
        assert!(vals[0].get("frame").is_none());
    }
}
