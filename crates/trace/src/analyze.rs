//! Transport analytics over a parsed JSONL capture.
//!
//! Everything here consumes the flat event objects produced by
//! [`crate::jsonl`] and reduces them to the accounting the paper argues
//! from: per-stream HOL-block time, recovery time split fast-rtx vs RTO,
//! cwnd evolution, and a per-cell "where did the bytes stall" summary.

use crate::json::JVal;
use std::collections::BTreeMap;

fn u(v: &JVal, k: &str) -> u64 {
    v.get(k).and_then(|x| x.as_u64()).unwrap_or(0)
}

fn i(v: &JVal, k: &str) -> i64 {
    v.get(k).and_then(|x| x.as_i64()).unwrap_or(0)
}

fn s<'a>(v: &'a JVal, k: &str) -> &'a str {
    v.get(k).and_then(|x| x.as_str()).unwrap_or("")
}

/// Histogram bucket upper bounds for HOL-block durations (ns).
pub const HOL_BUCKETS_NS: [u64; 5] = [100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000];

pub fn bucket_labels() -> [&'static str; 6] {
    ["<100us", "<1ms", "<10ms", "<100ms", "<1s", ">=1s"]
}

#[derive(Debug, Clone, Default, PartialEq)]
pub struct HolRow {
    pub host: u16,
    pub peer: u16,
    pub stream: u16,
    /// "snd" (outbound-queue block) or "rcv" (reassembly/ordering block).
    /// Captures older than the I-DATA work carry no side field and default
    /// to "rcv", which is what they measured.
    pub side: String,
    pub blocks: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    pub released: u64,
    /// Block-duration histogram over [`HOL_BUCKETS_NS`] (last = overflow).
    pub hist: [u64; 6],
}

/// Per-(host, peer, stream, side) HOL-block aggregation, sorted by key.
pub fn hol_rows(events: &[JVal]) -> Vec<HolRow> {
    let mut map: BTreeMap<(u16, u16, u16, String), HolRow> = BTreeMap::new();
    for ev in events {
        if s(ev, "ev") != "hol_end" {
            continue;
        }
        let side = match s(ev, "side") {
            "snd" => "snd",
            _ => "rcv",
        };
        let key =
            (u(ev, "host") as u16, u(ev, "peer") as u16, u(ev, "stream") as u16, side.to_string());
        let dur = u(ev, "dur");
        let row = map.entry(key.clone()).or_insert_with(|| HolRow {
            host: key.0,
            peer: key.1,
            stream: key.2,
            side: key.3,
            ..HolRow::default()
        });
        row.blocks += 1;
        row.total_ns += dur;
        row.max_ns = row.max_ns.max(dur);
        row.released += u(ev, "released");
        let b = HOL_BUCKETS_NS.iter().position(|&ub| dur < ub).unwrap_or(HOL_BUCKETS_NS.len());
        row.hist[b] += 1;
    }
    map.into_values().collect()
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryClass {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

impl RecoveryClass {
    fn add(&mut self, dt: u64) {
        self.count += 1;
        self.total_ns += dt;
        self.max_ns = self.max_ns.max(dt);
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovery {
    /// Dropped data packets whose payload was later re-sent.
    pub fast: RecoveryClass,
    pub rto: RecoveryClass,
    /// Dropped data packets never seen re-sent (e.g. capture truncated or
    /// the run ended first).
    pub unrecovered: u64,
    /// Pure control/ack drops — no payload to recover.
    pub ctl_drops: u64,
}

/// Per-loss-event recovery accounting. A loss event is a dropped data
/// packet; its recovery time is the gap until the first later send whose
/// payload range covers the dropped packet's first unit (TSN for SCTP,
/// sequence byte for TCP). The event is classified "rto" when the sender
/// armed timer fired on that flow inside the gap, else "fast-rtx".
pub fn recovery(events: &[JVal]) -> Recovery {
    // flow key: (proto, src, dst)
    type Flow = (u8, u16, u16);
    let proto_code = |p: &str| if p == "sctp" { 1u8 } else { 0u8 };

    struct Send {
        t: u64,
        lo: u64,
        hi: u64, // [lo, hi): TSNs or sequence bytes
    }
    let mut sends: BTreeMap<Flow, Vec<Send>> = BTreeMap::new();
    let mut fires: BTreeMap<Flow, Vec<u64>> = BTreeMap::new();
    let mut drops: Vec<(Flow, u64, u64)> = Vec::new(); // (flow, t, first unit)
    let mut out = Recovery::default();

    for ev in events {
        match s(ev, "ev") {
            "pkt" => {
                let proto = proto_code(s(ev, "proto"));
                let flow = (proto, u(ev, "src") as u16, u(ev, "dst") as u16);
                let kind = s(ev, "kind");
                let dropped = s(ev, "verdict") != "deliver";
                if kind != "data" {
                    if dropped {
                        out.ctl_drops += 1;
                    }
                    continue;
                }
                let lo = u(ev, "tsn");
                // ntsn is chunk-count for SCTP and payload-bytes for TCP,
                // but for SCTP chunks in one packet TSNs are consecutive,
                // so [tsn, tsn+ntsn) is the covered range either way.
                let hi = lo + u(ev, "ntsn").max(1);
                sends.entry(flow).or_default().push(Send { t: u(ev, "t"), lo, hi });
                if dropped {
                    drops.push((flow, u(ev, "t"), lo));
                }
            }
            "rto_fire" => {
                let proto = proto_code(s(ev, "proto"));
                // The firing host is the sender of the flow being recovered.
                let flow_host = u(ev, "host") as u16;
                let peer = u(ev, "peer") as u16;
                fires.entry((proto, flow_host, peer)).or_default().push(u(ev, "t"));
            }
            _ => {}
        }
    }

    for (flow, t_drop, unit) in drops {
        let resend = sends
            .get(&flow)
            .and_then(|v| v.iter().find(|snd| snd.t > t_drop && snd.lo <= unit && unit < snd.hi));
        match resend {
            None => out.unrecovered += 1,
            Some(snd) => {
                let dt = snd.t - t_drop;
                let fired = fires
                    .get(&flow)
                    .map(|f| f.iter().any(|&tf| tf > t_drop && tf <= snd.t))
                    .unwrap_or(false);
                if fired {
                    out.rto.add(dt);
                } else {
                    out.fast.add(dt);
                }
            }
        }
    }
    out
}

#[derive(Debug, Clone, Default, PartialEq)]
pub struct CwndCurve {
    pub proto: String,
    pub host: u16,
    pub peer: u16,
    pub path: u16,
    pub samples: u64,
    pub min: u64,
    pub max: u64,
    pub last: u64,
    /// Multiplicative decreases observed (cwnd dropped to <= half).
    pub collapses: u64,
}

/// Cwnd evolution summary per (proto, host, peer, path), sorted by key.
pub fn cwnd_curves(events: &[JVal]) -> Vec<CwndCurve> {
    let mut map: BTreeMap<(String, u16, u16, u16), CwndCurve> = BTreeMap::new();
    for ev in events {
        if s(ev, "ev") != "cwnd" {
            continue;
        }
        let key = (s(ev, "proto").to_string(), u(ev, "host") as u16, u(ev, "peer") as u16, u(ev, "path") as u16);
        let cwnd = u(ev, "cwnd");
        let c = map.entry(key.clone()).or_insert_with(|| CwndCurve {
            proto: key.0.clone(),
            host: key.1,
            peer: key.2,
            path: key.3,
            min: u64::MAX,
            ..CwndCurve::default()
        });
        if c.samples > 0 && cwnd * 2 <= c.last {
            c.collapses += 1;
        }
        c.samples += 1;
        c.min = c.min.min(cwnd);
        c.max = c.max.max(cwnd);
        c.last = cwnd;
    }
    map.into_values().collect()
}

#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stall {
    pub makespan_ns: u64,
    pub pkts: u64,
    pub data_pkts: u64,
    pub drops_loss: u64,
    pub drops_queue: u64,
    pub drops_down: u64,
    /// Receiver-side HOL blocks (reassembly/ordering stalls; the classic
    /// metric — captures without a side field count here).
    pub hol_blocks: u64,
    pub hol_ns: u64,
    /// Sender-side HOL blocks (outbound-queue monopolization; only emitted
    /// by traced runs since the I-DATA work).
    pub snd_hol_blocks: u64,
    pub snd_hol_ns: u64,
    pub rto_fires: u64,
    pub fast_rtx: u64,
    pub rto_recovery_ns: u64,
    pub fast_recovery_ns: u64,
    pub mpi_unexpected: u64,
    pub mpi_matched_posted: u64,
    /// Fault-plane state transitions (GE chain flips, flap/degrade edges)
    /// observed in the capture.
    pub fault_edges: u64,
}

/// The "where did the bytes stall" roll-up for one capture (= one cell).
pub fn stall(events: &[JVal]) -> Stall {
    let mut st = Stall::default();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for ev in events {
        let kind = s(ev, "ev");
        if kind == "header" {
            continue;
        }
        let t = u(ev, "t");
        t_min = t_min.min(t);
        t_max = t_max.max(t);
        match kind {
            "pkt" => {
                st.pkts += 1;
                if s(ev, "kind") == "data" {
                    st.data_pkts += 1;
                }
                match s(ev, "verdict") {
                    "loss" => st.drops_loss += 1,
                    "queue" => st.drops_queue += 1,
                    "down" => st.drops_down += 1,
                    _ => {}
                }
            }
            "hol_end" => {
                if s(ev, "side") == "snd" {
                    st.snd_hol_blocks += 1;
                    st.snd_hol_ns += u(ev, "dur");
                } else {
                    st.hol_blocks += 1;
                    st.hol_ns += u(ev, "dur");
                }
            }
            "rto_fire" => st.rto_fires += 1,
            "fast_rtx" => st.fast_rtx += 1,
            "fault" => st.fault_edges += 1,
            "mpi_match" => {
                if ev.get("posted") == Some(&JVal::Bool(true)) {
                    st.mpi_matched_posted += 1;
                } else {
                    st.mpi_unexpected += 1;
                }
            }
            _ => {}
        }
        let _ = i(ev, "q");
    }
    if t_max >= t_min {
        st.makespan_ns = t_max - t_min;
    }
    let rec = recovery(events);
    st.rto_recovery_ns = rec.rto.total_ns;
    st.fast_recovery_ns = rec.fast.total_ns;
    st
}

/// One closed fault window: the span between a fault rule's "on" edge and
/// its matching "off" edge, plus what went wrong inside it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultWindow {
    /// Fault family: "ge" (bad-state visit), "flap" (link down), "degrade"
    /// (bandwidth window).
    pub kind: String,
    /// Rule index within its family (the plan's vec position).
    pub rule: u64,
    pub from_ns: u64,
    pub until_ns: u64,
    /// Packet drops (any reason) whose offer time fell inside the window.
    pub drops: u64,
    /// Retransmission-timer expiries inside the window.
    pub rto_fires: u64,
}

/// Pair the capture's fault edges into windows and correlate: how many
/// drops and RTO expiries landed inside each. Fault edges are emitted
/// lazily at packet-offer time, so a window's `from_ns` is the first packet
/// that *saw* the state, not the scripted boundary — exactly the span that
/// could have affected traffic. A window still open when the capture ends
/// is closed at the last event's timestamp.
pub fn fault_windows(events: &[JVal]) -> Vec<FaultWindow> {
    let mut open: BTreeMap<(&str, u64), u64> = BTreeMap::new();
    let mut windows: Vec<FaultWindow> = Vec::new();
    let mut drops: Vec<u64> = Vec::new();
    let mut rtos: Vec<u64> = Vec::new();
    let mut t_max = 0u64;
    for ev in events {
        let t = u(ev, "t");
        t_max = t_max.max(t);
        match s(ev, "ev") {
            "fault" => {
                let (family, on) = match s(ev, "kind") {
                    "ge_bad" => ("ge", true),
                    "ge_good" => ("ge", false),
                    "flap_down" => ("flap", true),
                    "flap_up" => ("flap", false),
                    "degrade_on" => ("degrade", true),
                    "degrade_off" => ("degrade", false),
                    _ => continue,
                };
                let rule = u(ev, "rule");
                if on {
                    open.entry((family, rule)).or_insert(t);
                } else if let Some(from) = open.remove(&(family, rule)) {
                    windows.push(FaultWindow {
                        kind: family.to_string(),
                        rule,
                        from_ns: from,
                        until_ns: t,
                        ..FaultWindow::default()
                    });
                }
            }
            "pkt" => {
                if s(ev, "verdict") != "deliver" {
                    drops.push(t);
                }
            }
            "rto_fire" => rtos.push(t),
            _ => {}
        }
    }
    for ((family, rule), from) in open {
        windows.push(FaultWindow {
            kind: family.to_string(),
            rule,
            from_ns: from,
            until_ns: t_max,
            ..FaultWindow::default()
        });
    }
    windows.sort_by_key(|w| (w.from_ns, w.kind.clone(), w.rule));
    for w in &mut windows {
        w.drops = drops.iter().filter(|&&t| w.from_ns <= t && t <= w.until_ns).count() as u64;
        w.rto_fires = rtos.iter().filter(|&&t| w.from_ns <= t && t <= w.until_ns).count() as u64;
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jsonl::parse_lines;

    fn evs(text: &str) -> Vec<JVal> {
        parse_lines(text).unwrap()
    }

    #[test]
    fn hol_rows_aggregate_and_bucket() {
        let events = evs(concat!(
            "{\"t\":1,\"ev\":\"hol_end\",\"host\":1,\"peer\":0,\"stream\":2,\"dur\":50000,\"released\":1}\n",
            "{\"t\":2,\"ev\":\"hol_end\",\"host\":1,\"peer\":0,\"stream\":2,\"dur\":5000000,\"released\":2}\n",
            "{\"t\":3,\"ev\":\"hol_end\",\"host\":1,\"peer\":0,\"stream\":9,\"dur\":2000000000,\"released\":1}\n",
        ));
        let rows = hol_rows(&events);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].blocks, 2);
        assert_eq!(rows[0].total_ns, 5_050_000);
        assert_eq!(rows[0].max_ns, 5_000_000);
        assert_eq!(rows[0].hist, [1, 0, 1, 0, 0, 0]);
        assert_eq!(rows[0].side, "rcv", "side-less capture defaults to rcv");
        assert_eq!(rows[1].hist, [0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn hol_rows_split_by_side() {
        let events = evs(concat!(
            "{\"t\":1,\"ev\":\"hol_end\",\"host\":0,\"peer\":1,\"stream\":2,\"side\":\"snd\",\"dur\":100,\"released\":0}\n",
            "{\"t\":2,\"ev\":\"hol_end\",\"host\":0,\"peer\":1,\"stream\":2,\"side\":\"rcv\",\"dur\":900,\"released\":1}\n",
            "{\"t\":3,\"ev\":\"hol_end\",\"host\":0,\"peer\":1,\"stream\":2,\"side\":\"snd\",\"dur\":300,\"released\":0}\n",
        ));
        let rows = hol_rows(&events);
        assert_eq!(rows.len(), 2);
        // BTreeMap order: "rcv" < "snd".
        assert_eq!((rows[0].side.as_str(), rows[0].blocks, rows[0].total_ns), ("rcv", 1, 900));
        assert_eq!((rows[1].side.as_str(), rows[1].blocks, rows[1].total_ns), ("snd", 2, 400));
        let st = stall(&events);
        assert_eq!((st.hol_blocks, st.hol_ns), (1, 900));
        assert_eq!((st.snd_hol_blocks, st.snd_hol_ns), (2, 400));
    }

    #[test]
    fn recovery_classifies_fast_vs_rto() {
        let events = evs(concat!(
            // TSN 10 dropped at t=100, resent at t=300, no RTO fire: fast.
            "{\"t\":100,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"loss\",\"tsn\":10,\"ntsn\":1}\n",
            "{\"t\":300,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"deliver\",\"at\":350,\"tsn\":10,\"ntsn\":1}\n",
            // TSN 20 dropped at t=400, RTO fires at 900, resent at t=1000: rto.
            "{\"t\":400,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"loss\",\"tsn\":20,\"ntsn\":2}\n",
            "{\"t\":900,\"ev\":\"rto_fire\",\"proto\":\"sctp\",\"host\":0,\"peer\":1,\"backoff\":0,\"marked\":2}\n",
            "{\"t\":1000,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"deliver\",\"at\":1050,\"tsn\":20,\"ntsn\":2}\n",
            // Sack drop: counted as ctl, not a loss event.
            "{\"t\":1100,\"ev\":\"pkt\",\"src\":1,\"dst\":0,\"proto\":\"sctp\",\"kind\":\"sack\",\"verdict\":\"loss\",\"tsn\":0,\"ntsn\":0}\n",
            // TSN 99 dropped, never resent: unrecovered.
            "{\"t\":1200,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"loss\",\"tsn\":99,\"ntsn\":1}\n",
        ));
        let r = recovery(&events);
        assert_eq!(r.fast.count, 1);
        assert_eq!(r.fast.total_ns, 200);
        assert_eq!(r.rto.count, 1);
        assert_eq!(r.rto.total_ns, 600);
        assert_eq!(r.ctl_drops, 1);
        assert_eq!(r.unrecovered, 1);
    }

    #[test]
    fn cwnd_curves_count_collapses() {
        let events = evs(concat!(
            "{\"t\":1,\"ev\":\"cwnd\",\"proto\":\"tcp\",\"host\":0,\"peer\":1,\"path\":0,\"cwnd\":10000,\"ssthresh\":99,\"flight\":0}\n",
            "{\"t\":2,\"ev\":\"cwnd\",\"proto\":\"tcp\",\"host\":0,\"peer\":1,\"path\":0,\"cwnd\":20000,\"ssthresh\":99,\"flight\":0}\n",
            "{\"t\":3,\"ev\":\"cwnd\",\"proto\":\"tcp\",\"host\":0,\"peer\":1,\"path\":0,\"cwnd\":10000,\"ssthresh\":99,\"flight\":0}\n",
            "{\"t\":4,\"ev\":\"cwnd\",\"proto\":\"tcp\",\"host\":0,\"peer\":1,\"path\":0,\"cwnd\":2920,\"ssthresh\":99,\"flight\":0}\n",
        ));
        let curves = cwnd_curves(&events);
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].samples, 4);
        assert_eq!(curves[0].min, 2920);
        assert_eq!(curves[0].max, 20000);
        assert_eq!(curves[0].last, 2920);
        assert_eq!(curves[0].collapses, 2);
    }

    #[test]
    fn fault_windows_pair_edges_and_correlate() {
        let events = evs(concat!(
            // Flap window [100, 900]: two drops and one RTO inside.
            "{\"t\":100,\"ev\":\"fault\",\"kind\":\"flap_down\",\"rule\":0,\"host\":-1,\"iface\":0}\n",
            "{\"t\":200,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"down\",\"tsn\":1,\"ntsn\":1}\n",
            "{\"t\":300,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"down\",\"tsn\":2,\"ntsn\":1}\n",
            "{\"t\":800,\"ev\":\"rto_fire\",\"proto\":\"sctp\",\"host\":0,\"peer\":1,\"backoff\":0,\"marked\":1}\n",
            "{\"t\":900,\"ev\":\"fault\",\"kind\":\"flap_up\",\"rule\":0,\"host\":-1,\"iface\":0}\n",
            // Drop outside every window.
            "{\"t\":1000,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"loss\",\"tsn\":3,\"ntsn\":1}\n",
            // GE bad-state visit left open: closes at capture end (1500).
            "{\"t\":1200,\"ev\":\"fault\",\"kind\":\"ge_bad\",\"rule\":1,\"host\":-1,\"iface\":-1}\n",
            "{\"t\":1500,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"loss\",\"tsn\":4,\"ntsn\":1}\n",
        ));
        let ws = fault_windows(&events);
        assert_eq!(ws.len(), 2);
        assert_eq!((ws[0].kind.as_str(), ws[0].from_ns, ws[0].until_ns), ("flap", 100, 900));
        assert_eq!((ws[0].drops, ws[0].rto_fires), (2, 1));
        assert_eq!((ws[1].kind.as_str(), ws[1].from_ns, ws[1].until_ns), ("ge", 1200, 1500));
        assert_eq!((ws[1].drops, ws[1].rto_fires), (1, 0));
        let st = stall(&events);
        assert_eq!(st.fault_edges, 3);
        assert_eq!(st.drops_down, 2);
    }

    #[test]
    fn stall_rolls_up() {
        let events = evs(concat!(
            "{\"t\":0,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"deliver\",\"at\":10,\"tsn\":1,\"ntsn\":1}\n",
            "{\"t\":5,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"loss\",\"tsn\":2,\"ntsn\":1}\n",
            "{\"t\":50,\"ev\":\"pkt\",\"src\":0,\"dst\":1,\"proto\":\"sctp\",\"kind\":\"data\",\"verdict\":\"deliver\",\"at\":60,\"tsn\":2,\"ntsn\":1}\n",
            "{\"t\":60,\"ev\":\"hol_end\",\"host\":1,\"peer\":0,\"stream\":0,\"dur\":55,\"released\":1}\n",
            "{\"t\":70,\"ev\":\"mpi_match\",\"rank\":1,\"src\":0,\"tag\":0,\"cxt\":0,\"len\":100,\"kind\":\"eager\",\"posted\":false}\n",
        ));
        let st = stall(&events);
        assert_eq!(st.pkts, 3);
        assert_eq!(st.data_pkts, 3);
        assert_eq!(st.drops_loss, 1);
        assert_eq!(st.hol_blocks, 1);
        assert_eq!(st.hol_ns, 55);
        assert_eq!(st.fast_recovery_ns, 45);
        assert_eq!(st.mpi_unexpected, 1);
        assert_eq!(st.makespan_ns, 70);
    }
}
