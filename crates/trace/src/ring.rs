//! Preallocated overwrite-oldest ring buffer for trace records.
//!
//! A flight recorder must never grow without bound: the ring holds the most
//! recent `cap` records and counts how many older ones it overwrote, so the
//! sinks can report truncation honestly instead of silently pretending the
//! capture is complete.

use crate::Rec;

#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<Rec>,
    cap: usize,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    /// Records overwritten because the ring was full.
    dropped: u64,
}

impl Ring {
    pub fn new(cap: usize) -> Ring {
        let cap = cap.max(1);
        Ring { buf: Vec::with_capacity(cap.min(1 << 16)), cap, head: 0, dropped: 0 }
    }

    pub fn push(&mut self, rec: Rec) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records in arrival order (oldest surviving record first).
    pub fn to_vec(&self) -> Vec<Rec> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Rec};

    fn rec(seq: u64) -> Rec {
        Rec { t_ns: seq, seq, ev: Event::RtoFire(crate::RtoFireEv { proto: crate::Proto8::Tcp, host: 0, peer: 1, path: 0, backoff: 0, marked: 0 }) }
    }

    #[test]
    fn keeps_latest_and_counts_dropped() {
        let mut r = Ring::new(3);
        for i in 0..5 {
            r.push(rec(i));
        }
        let v = r.to_vec();
        assert_eq!(v.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn no_wrap_is_in_order() {
        let mut r = Ring::new(8);
        for i in 0..4 {
            r.push(rec(i));
        }
        assert_eq!(r.to_vec().iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(r.dropped(), 0);
    }
}
