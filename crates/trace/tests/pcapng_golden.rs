//! Golden-byte tests for the pcapng writer: the exact octets of each block
//! type, checked against the pcapng spec by hand. Any layout drift (endian,
//! padding, option encoding) breaks these before it breaks a dissector.

use trace::pcapng::{enhanced_packet_block, interface_description_block, section_header_block};

#[test]
fn section_header_block_golden() {
    let expect: [u8; 28] = [
        0x0A, 0x0D, 0x0D, 0x0A, // block type
        0x1C, 0x00, 0x00, 0x00, // total length = 28
        0x4D, 0x3C, 0x2B, 0x1A, // byte-order magic
        0x01, 0x00, 0x00, 0x00, // version 1.0
        0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, // section length: unspecified
        0x1C, 0x00, 0x00, 0x00, // trailing total length
    ];
    assert_eq!(section_header_block(), expect);
}

#[test]
fn interface_description_block_golden() {
    let expect: [u8; 40] = [
        0x01, 0x00, 0x00, 0x00, // block type = IDB
        0x28, 0x00, 0x00, 0x00, // total length = 40
        0x65, 0x00, // linktype = 101 (LINKTYPE_RAW)
        0x00, 0x00, // reserved
        0x00, 0x00, 0x00, 0x00, // snaplen = 0 (no limit)
        0x02, 0x00, 0x04, 0x00, b'h', b'0', b'i', b'0', // if_name = "h0i0"
        0x09, 0x00, 0x01, 0x00, 0x09, 0x00, 0x00, 0x00, // if_tsresol = 10^-9, padded
        0x00, 0x00, 0x00, 0x00, // opt_endofopt
        0x28, 0x00, 0x00, 0x00, // trailing total length
    ];
    assert_eq!(interface_description_block("h0i0"), expect);
}

#[test]
fn interface_name_padding() {
    // A 5-char name pads to 8: block grows by exactly one 4-byte word.
    let b = interface_description_block("h10i2");
    assert_eq!(b.len(), 44);
    assert_eq!(&b[16..20], &[0x02, 0x00, 0x05, 0x00]);
    assert_eq!(&b[20..25], b"h10i2");
    assert_eq!(&b[25..28], &[0, 0, 0]); // option padding
}

#[test]
fn enhanced_packet_block_golden() {
    let data = [0xDE, 0xAD, 0xBE, 0xEF, 0x01];
    let t_ns: u64 = (1 << 32) | 2; // high word 1, low word 2
    let expect: [u8; 40] = [
        0x06, 0x00, 0x00, 0x00, // block type = EPB
        0x28, 0x00, 0x00, 0x00, // total length = 40
        0x02, 0x00, 0x00, 0x00, // interface id = 2
        0x01, 0x00, 0x00, 0x00, // timestamp high
        0x02, 0x00, 0x00, 0x00, // timestamp low
        0x05, 0x00, 0x00, 0x00, // captured length = 5
        0xDC, 0x05, 0x00, 0x00, // original length = 1500
        0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x00, 0x00, 0x00, // data, padded to 8
        0x28, 0x00, 0x00, 0x00, // trailing total length
    ];
    assert_eq!(enhanced_packet_block(2, t_ns, 1500, &data), expect);
}

#[test]
fn whole_capture_assembles_in_order() {
    use trace::{DropKind, Event, PktEv, PktKind, PktVerdict, Proto8, Tracer};
    let tr = Tracer::new(64, 0);
    tr.set_topology(2, 1);
    tr.emit(
        7,
        Event::Pkt(PktEv {
            src_host: 1,
            src_if: 0,
            dst_host: 0,
            dst_if: 0,
            proto: Proto8::Sctp,
            kind: PktKind::Data,
            wire_len: 1500,
            verdict: PktVerdict::Drop(DropKind::Loss),
            tsn: 1,
            ntsn: 1,
            stream: 0,
            frame: vec![0x45, 0x00, 0x00, 0x04],
            frame_orig_len: 1500,
        }),
    );
    let bytes = tr.dump(10).write_pcapng();
    // SHB(28) + 2×IDB(40) + EPB: 12 + 20 + 4 data padded to 4 = 36.
    assert_eq!(bytes.len(), 28 + 40 + 40 + 36);
    // The EPB lands on interface 1 (host 1, iface 0) with orig_len 1500.
    let epb = &bytes[108..];
    assert_eq!(&epb[0..4], &[0x06, 0x00, 0x00, 0x00]);
    assert_eq!(&epb[8..12], &[0x01, 0x00, 0x00, 0x00]); // iface id
    assert_eq!(&epb[20..24], &[0x04, 0x00, 0x00, 0x00]); // cap len
    assert_eq!(&epb[24..28], &[0xDC, 0x05, 0x00, 0x00]); // orig len 1500
}
