//! `simcore` — deterministic discrete-event simulation core.
//!
//! This crate is the foundation of the `sctp-mpi` reproduction of
//! *“SCTP versus TCP for MPI”* (SC 2005). It provides:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`], [`Dur`]);
//! * [`sched`] — the event queue and scheduler context ([`Ctx`]), with
//!   deterministic tie-breaking and cancellable timers;
//! * [`process`] — a virtual-process runtime ([`Runtime`], [`ProcEnv`]) that
//!   runs simulated programs as blocking Rust code on real threads while
//!   keeping the whole simulation single-threaded in effect (exactly one
//!   runnable thread at any instant), hence fully deterministic;
//! * [`rng`] — seed-derived independent random streams.
//!
//! Everything above this crate (network, transports, MPI middleware,
//! workloads) is built on these four pieces.

pub mod fxhash;
pub mod process;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod time;

pub use process::{
    reference_discipline, set_reference_discipline, ProcEnv, ProcId, RunOutcome, Runtime,
};
pub use rng::{derive_rng, stream_id};
pub use sched::{Ctx, TimerId};
pub use shard::{
    effective_shards, local_ix, run_sharded, shard_of, Inbound, Mailbox, ShardCfg, ShardOutcome,
    ShardSim, ShardWorld,
};
pub use time::{transmission_time, Dur, SimTime};
