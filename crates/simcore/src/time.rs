//! Simulated time.
//!
//! All simulation timestamps are nanoseconds since the start of the run,
//! stored in a `u64`. That gives ~584 years of range, far beyond any
//! experiment in this repository, while keeping arithmetic exact — there is
//! no floating-point drift in event ordering.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Dur(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Dur((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiplication by an integer factor (used for RTO backoff).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Round this duration up to a multiple of `granularity` (used to model
    /// coarse-grained kernel timers). A zero granularity is the identity.
    #[inline]
    pub fn round_up_to(self, granularity: Dur) -> Dur {
        if granularity.0 == 0 {
            return self;
        }
        let g = granularity.0;
        Dur(self.0.div_ceil(g) * g)
    }
}

impl Add<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Dur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Dur) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Compute `bytes / rate` as a duration, where `rate` is in bits per second.
/// This is the wire-serialization time of a packet.
#[inline]
pub fn transmission_time(bytes: u64, bits_per_sec: u64) -> Dur {
    debug_assert!(bits_per_sec > 0);
    // ns = bytes * 8 * 1e9 / bps, computed in u128 to avoid overflow.
    let ns = (bytes as u128 * 8 * 1_000_000_000) / bits_per_sec as u128;
    Dur::from_nanos(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + Dur::from_millis(5) + Dur::from_micros(3);
        assert_eq!(t.as_nanos(), 5_003_000);
        assert_eq!(t.since(SimTime::ZERO), Dur::from_nanos(5_003_000));
        assert_eq!(t.since(t + Dur::from_secs(1)), Dur::ZERO, "saturates");
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Dur::from_secs(2), Dur::from_millis(2000));
        assert_eq!(Dur::from_millis(2), Dur::from_micros(2000));
        assert_eq!(Dur::from_micros(2), Dur::from_nanos(2000));
        assert_eq!(Dur::from_secs_f64(0.5), Dur::from_millis(500));
    }

    #[test]
    fn round_up_models_coarse_timers() {
        let g = Dur::from_millis(500);
        assert_eq!(Dur::from_millis(1).round_up_to(g), Dur::from_millis(500));
        assert_eq!(Dur::from_millis(500).round_up_to(g), Dur::from_millis(500));
        assert_eq!(Dur::from_millis(501).round_up_to(g), Dur::from_millis(1000));
        assert_eq!(Dur::from_millis(7).round_up_to(Dur::ZERO), Dur::from_millis(7));
    }

    #[test]
    fn transmission_time_gigabit() {
        // 1500 bytes at 1 Gb/s = 12 microseconds.
        assert_eq!(transmission_time(1500, 1_000_000_000), Dur::from_micros(12));
        // 1 byte at 8 bps = 1 second.
        assert_eq!(transmission_time(1, 8), Dur::from_secs(1));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", Dur::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::from_secs(12)), "12.000s");
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(Dur::from_nanos(1).max(Dur::from_nanos(2)), Dur::from_nanos(2));
        assert_eq!(Dur::from_nanos(1).min(Dur::from_nanos(2)), Dur::from_nanos(1));
    }
}
