//! Virtual-process runtime.
//!
//! Simulated programs (e.g. MPI ranks) run as ordinary blocking Rust code on
//! their own OS threads, but **exactly one thread is runnable at a time**:
//! either the driver (which fires timed events) or a single resumed process.
//! Control passes driver → process on wakeup and process → driver on park.
//! This makes whole simulations deterministic — same seed, same world, same
//! result, bit for bit — while letting workloads be written as
//! straight-line code instead of hand-rolled state machines.
//!
//! Wakeup discipline: a parked process is resumed only via
//! [`crate::sched::Ctx::wake`]. Wakeups may be *spurious* from the waiter's
//! perspective (e.g. a CPU-charge sleep can consume a readiness wake), so all
//! waiting code must follow condition-variable style: re-check the condition
//! after every park. [`ProcEnv::block_on`] encodes that pattern.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::rng::derive_rng;
use crate::sched::Ctx;
use crate::time::{Dur, SimTime};

/// Identifies a simulated process within one [`Runtime`]. Process ids are
/// assigned densely from zero in spawn order, so MPI ranks map directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    /// Thread spawned, waiting for its first resume.
    Created,
    /// The one thread currently allowed to run.
    Running,
    /// Blocked in `park`, waiting for `Running`.
    Parked,
    /// User closure returned (or panicked).
    Done,
}

struct CtlInner {
    state: ProcState,
    panicked: bool,
}

struct ProcCtl {
    name: String,
    inner: Mutex<CtlInner>,
    cv: Condvar,
}

impl ProcCtl {
    fn new(name: String) -> Self {
        ProcCtl {
            name,
            inner: Mutex::new(CtlInner { state: ProcState::Created, panicked: false }),
            cv: Condvar::new(),
        }
    }

    /// Called from the process thread: yield control to the driver and wait
    /// to be resumed.
    fn park(&self) {
        let mut g = self.inner.lock();
        debug_assert_eq!(g.state, ProcState::Running);
        g.state = ProcState::Parked;
        self.cv.notify_all();
        while g.state == ProcState::Parked {
            self.cv.wait(&mut g);
        }
        debug_assert_eq!(g.state, ProcState::Running);
    }

    /// Called from the process thread on first entry: wait for initial resume.
    fn wait_first_resume(&self) {
        let mut g = self.inner.lock();
        while g.state != ProcState::Running {
            self.cv.wait(&mut g);
        }
    }

    /// Called from the driver: hand control to this process and block until
    /// it parks or finishes. Returns immediately if the process is done.
    fn resume_and_wait(&self) {
        let mut g = self.inner.lock();
        match g.state {
            ProcState::Done => return,
            ProcState::Parked | ProcState::Created => {
                g.state = ProcState::Running;
                self.cv.notify_all();
            }
            ProcState::Running => unreachable!("driver resumed a running process"),
        }
        while g.state == ProcState::Running {
            self.cv.wait(&mut g);
        }
    }

    fn finish(&self, panicked: bool) {
        let mut g = self.inner.lock();
        g.state = ProcState::Done;
        g.panicked = panicked;
        self.cv.notify_all();
    }

    fn is_done(&self) -> bool {
        self.inner.lock().state == ProcState::Done
    }

    fn is_parked_or_created(&self) -> bool {
        matches!(self.inner.lock().state, ProcState::Parked | ProcState::Created)
    }
}

/// World + scheduler behind one mutex. Only one thread touches it at a time
/// by construction, so there is never contention — the mutex exists to
/// satisfy the borrow checker across threads.
struct Sim<W> {
    world: W,
    ctx: Ctx<W>,
}

struct Shared<W> {
    sim: Mutex<Sim<W>>,
    ctls: Vec<Arc<ProcCtl>>,
}

/// A handle a simulated process uses to touch the shared world, sleep, and
/// block. Cheap to clone would be possible but each process gets exactly one.
pub struct ProcEnv<W> {
    id: ProcId,
    shared: Arc<Shared<W>>,
    ctl: Arc<ProcCtl>,
}

impl<W: Send + 'static> ProcEnv<W> {
    /// This process's id (== its MPI rank in the middleware).
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.sim.lock().ctx.now()
    }

    /// Run `f` with exclusive access to the world and scheduler.
    ///
    /// Do not call `with` re-entrantly from inside `f` — the lock is not
    /// re-entrant and doing so deadlocks (caught only at runtime).
    pub fn with<R>(&self, f: impl FnOnce(&mut W, &mut Ctx<W>) -> R) -> R {
        let mut g = self.shared.sim.lock();
        let Sim { world, ctx } = &mut *g;
        f(world, ctx)
    }

    /// Yield to the driver until someone calls `ctx.wake(self.id())`.
    ///
    /// May return spuriously (see module docs); re-check your condition.
    pub fn park(&self) {
        self.ctl.park();
    }

    /// Block until `poll` returns `Some`. `poll` runs under the world lock
    /// and is responsible for registering this process wherever the eventual
    /// wake will come from (waiter lists, timers, ...).
    pub fn block_on<R>(&self, mut poll: impl FnMut(&mut W, &mut Ctx<W>) -> Option<R>) -> R {
        loop {
            if let Some(r) = self.with(&mut poll) {
                return r;
            }
            self.park();
        }
    }

    /// Advance this process's local time by `d` without doing anything —
    /// models computation or CPU charges. Simulated time continues for the
    /// network and for other processes.
    pub fn sleep(&self, d: Dur) {
        if d.is_zero() {
            return;
        }
        let done = Arc::new(Mutex::new(false));
        let done2 = Arc::clone(&done);
        let id = self.id;
        self.with(move |_, ctx| {
            ctx.schedule_in(d, move |_, ctx| {
                *done2.lock() = true;
                ctx.wake(id);
            });
        });
        while !*done.lock() {
            self.park();
        }
    }

    /// Let every other currently-runnable process run before continuing.
    pub fn yield_now(&self) {
        let id = self.id;
        self.with(|_, ctx| ctx.wake(id));
        self.park();
    }
}

/// Outcome of a completed simulation run.
#[derive(Debug)]
pub struct RunOutcome<W> {
    /// Final world state.
    pub world: W,
    /// Simulated time at which the last process finished (or the deadline).
    pub sim_time: SimTime,
    /// Total events fired (diagnostic).
    pub events: u64,
    /// True if the run was cut short by the deadline.
    pub hit_deadline: bool,
}

type ProcMain<W> = Box<dyn FnOnce(ProcEnv<W>) + Send + 'static>;

/// Builds and drives one simulation: a world, a scheduler, and a set of
/// virtual processes.
type PreEvent<W> = (SimTime, Box<dyn FnOnce(&mut W, &mut Ctx<W>) + Send + 'static>);

pub struct Runtime<W> {
    world: Option<W>,
    seed: u64,
    mains: Vec<(String, ProcMain<W>)>,
    deadline: SimTime,
    pre_events: Vec<PreEvent<W>>,
}

impl<W: Send + 'static> Runtime<W> {
    /// Create a runtime over `world`, deriving all randomness from `seed`.
    pub fn new(world: W, seed: u64) -> Self {
        Runtime {
            world: Some(world),
            seed,
            mains: Vec::new(),
            deadline: SimTime::MAX,
            pre_events: Vec::new(),
        }
    }

    /// Abort the run (returning `hit_deadline = true`) if simulated time
    /// would pass `deadline`. Guards against runaway simulations in tests.
    pub fn set_deadline(&mut self, deadline: SimTime) {
        self.deadline = deadline;
    }

    /// Register a process. Ids are assigned densely in spawn order.
    pub fn spawn(&mut self, name: impl Into<String>, f: impl FnOnce(ProcEnv<W>) + Send + 'static) -> ProcId {
        let id = ProcId(self.mains.len());
        self.mains.push((name.into(), Box::new(f)));
        id
    }

    /// Schedule an event before the run starts (watchdogs, fault injection).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static) {
        self.pre_events.push((at, Box::new(f)));
    }

    /// Drive the simulation to completion: all processes finished, or
    /// deadlock (panics), or deadline.
    pub fn run(mut self) -> RunOutcome<W> {
        let world = self.world.take().expect("run() called twice");
        let ctx = Ctx::new(derive_rng(self.seed, u64::MAX));
        let ctls: Vec<Arc<ProcCtl>> = self
            .mains
            .iter()
            .map(|(name, _)| Arc::new(ProcCtl::new(name.clone())))
            .collect();
        let shared = Arc::new(Shared { sim: Mutex::new(Sim { world, ctx }), ctls });

        // Spawn process threads; each waits for its first resume.
        let mut joins: Vec<JoinHandle<()>> = Vec::with_capacity(self.mains.len());
        for (i, (name, main)) in self.mains.drain(..).enumerate() {
            let ctl = Arc::clone(&shared.ctls[i]);
            let env = ProcEnv { id: ProcId(i), shared: Arc::clone(&shared), ctl: Arc::clone(&ctl) };
            let handle = std::thread::Builder::new()
                .name(format!("sim-{name}"))
                .spawn(move || {
                    ctl.wait_first_resume();
                    let result = catch_unwind(AssertUnwindSafe(move || main(env)));
                    let panicked = result.is_err();
                    ctl.finish(panicked);
                    if let Err(payload) = result {
                        // Preserve the panic message in test output; the
                        // driver aborts the run when it notices.
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic".into());
                        eprintln!("simulated process panicked: {msg}");
                    }
                })
                .expect("failed to spawn process thread");
            joins.push(handle);
        }

        // Seed: every process gets an initial wakeup, in id order.
        {
            let mut g = shared.sim.lock();
            for (at, f) in self.pre_events.drain(..) {
                g.ctx.schedule_at(at, f);
            }
            for i in 0..shared.ctls.len() {
                g.ctx.wake(ProcId(i));
            }
        }

        let mut hit_deadline = false;
        'driver: loop {
            // Drain wakeups first: same-timestamp readiness beats timers.
            let wakes = shared.sim.lock().ctx.take_wakes();
            if !wakes.is_empty() {
                for p in wakes {
                    shared.ctls[p.0].resume_and_wait();
                    if shared.ctls[p.0].inner.lock().panicked {
                        break 'driver;
                    }
                }
                continue;
            }

            if shared.ctls.iter().all(|c| c.is_done()) {
                break;
            }

            // Fire the next timed event.
            let fired = {
                let mut g = shared.sim.lock();
                if let Some(t) = g.ctx.next_event_time() {
                    if t > self.deadline {
                        hit_deadline = true;
                        false
                    } else {
                        match g.ctx.pop_event() {
                            Some(f) => {
                                let Sim { world, ctx } = &mut *g;
                                f(world, ctx);
                                true
                            }
                            None => false,
                        }
                    }
                } else {
                    false
                }
            };

            if fired {
                continue;
            }
            if hit_deadline {
                break;
            }

            // No wakes, no events, processes still alive: deadlock.
            if !shared.sim.lock().ctx.has_wakes() {
                let stuck: Vec<&str> = shared
                    .ctls
                    .iter()
                    .filter(|c| c.is_parked_or_created())
                    .map(|c| c.name.as_str())
                    .collect();
                panic!("simulation deadlock: no pending events, processes still blocked: {stuck:?}");
            }
        }

        let panicked = shared.ctls.iter().any(|c| c.inner.lock().panicked);

        // On deadline or panic, stranded threads are parked forever; we must
        // not join them. In the normal path all are done and join cleanly.
        if !hit_deadline && !panicked {
            for j in joins {
                let _ = j.join();
            }
        } else {
            std::mem::forget(joins);
        }

        if panicked {
            panic!("a simulated process panicked; see stderr for details");
        }

        let shared = match Arc::try_unwrap(shared) {
            Ok(s) => s,
            Err(arc) => {
                // Threads stranded by a deadline still hold clones; steal the
                // world by swapping. Safe: they are parked and will never run.
                let g = arc.sim.lock();
                let events = g.ctx.events_fired();
                let sim_time = g.ctx.now();
                // This path only happens on deadline; require W: Default?
                // Avoid that bound: panic with a clear message instead.
                drop(g);
                let _ = arc;
                panic!(
                    "deadline hit at {sim_time} after {events} events; \
                     world cannot be recovered from a deadline-aborted run"
                );
            }
        };
        let sim = shared.sim.into_inner();
        RunOutcome {
            sim_time: sim.ctx.now(),
            events: sim.ctx.events_fired(),
            world: sim.world,
            hit_deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<String>,
    }

    #[test]
    fn single_process_runs_to_completion() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("p0", |env: ProcEnv<W>| {
            env.with(|w, _| w.log.push("hello".into()));
        });
        let out = rt.run();
        assert_eq!(out.world.log, vec!["hello"]);
        assert_eq!(out.sim_time, SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_time() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("p0", |env: ProcEnv<W>| {
            env.sleep(Dur::from_millis(250));
            assert_eq!(env.now(), SimTime::ZERO + Dur::from_millis(250));
        });
        let out = rt.run();
        assert_eq!(out.sim_time, SimTime::ZERO + Dur::from_millis(250));
    }

    #[test]
    fn processes_interleave_deterministically() {
        fn run_once() -> Vec<String> {
            let mut rt = Runtime::new(W::default(), 7);
            for p in 0..4 {
                rt.spawn(format!("p{p}"), move |env: ProcEnv<W>| {
                    for step in 0..3 {
                        env.sleep(Dur::from_millis(10 * (p as u64 + 1)));
                        env.with(|w, _| w.log.push(format!("p{p}.{step}")));
                    }
                });
            }
            rt.run().world.log
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same seed must give identical interleavings");
        assert_eq!(a.len(), 12);
        assert_eq!(a[0], "p0.0", "shortest sleeper logs first");
    }

    #[test]
    fn block_on_wakes_from_event() {
        struct Flag {
            ready: bool,
        }
        let mut rt = Runtime::new(Flag { ready: false }, 1);
        rt.spawn("waiter", |env: ProcEnv<Flag>| {
            let id = env.id();
            // Arrange for an event to set the flag and wake us.
            env.with(move |_, ctx| {
                ctx.schedule_in(Dur::from_secs(1), move |w: &mut Flag, ctx| {
                    w.ready = true;
                    ctx.wake(id);
                });
            });
            env.block_on(|w, _| if w.ready { Some(()) } else { None });
            assert_eq!(env.now(), SimTime::ZERO + Dur::from_secs(1));
        });
        let out = rt.run();
        assert!(out.world.ready);
    }

    #[test]
    fn two_processes_ping_pong_via_world() {
        // p0 waits for a token p1 deposits after 5ms; then p0 responds and
        // p1 waits for the response. Exercises wake() round trips.
        #[derive(Default)]
        struct Mailbox {
            to_p0: Option<u32>,
            to_p1: Option<u32>,
        }
        let mut rt = Runtime::new(Mailbox::default(), 3);
        rt.spawn("p0", |env: ProcEnv<Mailbox>| {
            let v = env.block_on(|w, _| w.to_p0.take());
            env.with(|w, ctx| {
                w.to_p1 = Some(v + 1);
                ctx.wake(ProcId(1));
            });
        });
        rt.spawn("p1", |env: ProcEnv<Mailbox>| {
            env.sleep(Dur::from_millis(5));
            env.with(|w, ctx| {
                w.to_p0 = Some(41);
                ctx.wake(ProcId(0));
            });
            let v = env.block_on(|w, _| w.to_p1.take());
            assert_eq!(v, 42);
        });
        rt.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("stuck", |env: ProcEnv<W>| {
            env.park(); // nothing will ever wake us
        });
        rt.run();
    }

    #[test]
    #[should_panic(expected = "simulated process panicked")]
    fn process_panic_propagates() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("boom", |_env: ProcEnv<W>| {
            panic!("intentional test panic");
        });
        rt.run();
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("a", |env: ProcEnv<W>| {
            env.with(|w, _| w.log.push("a1".into()));
            env.yield_now();
            env.with(|w, _| w.log.push("a2".into()));
        });
        rt.spawn("b", |env: ProcEnv<W>| {
            env.with(|w, _| w.log.push("b1".into()));
        });
        let out = rt.run();
        assert_eq!(out.world.log, vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn spurious_wake_does_not_break_sleep() {
        // A process sleeping 100ms gets woken at 10ms by an unrelated event;
        // sleep must still take the full 100ms.
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("sleeper", |env: ProcEnv<W>| {
            let id = env.id();
            env.with(move |_, ctx| {
                ctx.schedule_in(Dur::from_millis(10), move |_, ctx| ctx.wake(id));
            });
            env.sleep(Dur::from_millis(100));
            assert_eq!(env.now(), SimTime::ZERO + Dur::from_millis(100));
        });
        rt.run();
    }
}
