//! Virtual-process runtime.
//!
//! Simulated programs (e.g. MPI ranks) run as ordinary blocking Rust code on
//! their own OS threads, but **exactly one thread is runnable at a time**:
//! either the driver (which fires timed events) or a single resumed process.
//! Control passes driver → process on wakeup and process → driver on park.
//! This makes whole simulations deterministic — same seed, same world, same
//! result, bit for bit — while letting workloads be written as
//! straight-line code instead of hand-rolled state machines.
//!
//! Handoff protocol: each process carries a `ProcCtl` holding a one-byte
//! *run token* (`AtomicU8`). Exactly one thread owns the token at any
//! instant; passing it is a single atomic store plus one `Thread::unpark` of
//! the unique peer — `notify_one` by construction, since each direction has
//! exactly one possible waiter (the registered driver/process thread, which
//! debug assertions enforce). The waiter spins briefly, then falls back to
//! `std::thread::park()`; park/unpark's token semantics make lost wakeups
//! impossible. This replaces the old `Mutex<CtlInner>` + `Condvar` protocol,
//! whose two condvar round trips per block/wake cycle dominated figure wall
//! clock (~5–6 µs/event, see EXPERIMENTS.md).
//!
//! Wakeup discipline: a parked process is resumed only via
//! [`crate::sched::Ctx::wake`]. Wakeups may be *spurious* from the waiter's
//! perspective, so all waiting code must follow condition-variable style:
//! re-check the condition after every park. [`ProcEnv::block_on`] encodes
//! that pattern. The scheduler additionally *suppresses* the one class of
//! wake it can prove spurious (wakes aimed at a process inside a CPU-charge
//! [`ProcEnv::sleep`]) and satisfies quiescent sleeps with an inline clock
//! advance; `set_reference_discipline` restores the original
//! one-resume-per-wake accounting for `SIM_CHECK` shadow runs. Both
//! disciplines produce bit-identical worlds, simulated times, and event
//! counts — only the number of driver↔process handoffs differs.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::{JoinHandle, Thread};

use parking_lot::Mutex;

use crate::rng::derive_rng;
use crate::sched::Ctx;
use crate::time::{Dur, SimTime};

thread_local! {
    static REFERENCE_DISCIPLINE: Cell<bool> = const { Cell::new(false) };
}

/// Select the wakeup discipline for `Runtime::run` calls made **on this
/// thread**: `true` re-enables the reference (pre-coalescing) accounting —
/// every wake resumes its target and every sleep is a timer + park — which
/// `SIM_CHECK=1` shadow runs compare against. Thread-local so parallel bench
/// workers can shadow-check cells independently.
pub fn set_reference_discipline(on: bool) {
    REFERENCE_DISCIPLINE.with(|c| c.set(on));
}

/// The discipline `Runtime::run` would pick up on this thread.
pub fn reference_discipline() -> bool {
    REFERENCE_DISCIPLINE.with(|c| c.get())
}

/// Identifies a simulated process within one [`Runtime`]. Process ids are
/// assigned densely from zero in spawn order, so MPI ranks map directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

/// Run-token states. A plain `AtomicU8` (not an enum behind a mutex): every
/// transition is a single store/swap by the token's current owner.
const CREATED: u8 = 0; // thread spawned, waiting for its first resume
const RUNNING: u8 = 1; // the one thread currently allowed to run
const PARKED: u8 = 2; // blocked in `park`, waiting for RUNNING
const DONE: u8 = 3; // user closure returned (or panicked)

/// How long a waiter spins before falling back to `thread::park()`. On a
/// single-CPU host spinning is pure waste — the peer cannot be scheduled
/// until we block — so the limit is zero there.
fn spin_limit() -> u32 {
    static LIMIT: OnceLock<u32> = OnceLock::new();
    *LIMIT.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => 96,
        _ => 0,
    })
}

/// Driver side: block until some process returns the baton. The driver
/// cannot watch any single process's `state` — direct handoffs pass the
/// token between processes without involving it — so releases are signalled
/// through this explicit flag, set only by `park`/`finish`. `swap` consumes
/// the release; a stale unpark permit merely re-runs the check.
fn wait_baton(baton: &AtomicBool) {
    let mut spins = 0;
    while !baton.swap(false, Ordering::AcqRel) {
        if spins < spin_limit() {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::park();
        }
    }
}

/// Per-process handoff control: the run token plus the two thread handles an
/// ownership transfer can target. `notify_one` semantics are structural —
/// `Thread::unpark` wakes exactly one specific thread, and per direction
/// only one thread can ever be waiting (the driver waits only in
/// `wait_baton`, the process thread only in `wait_token_granted`).
struct ProcCtl {
    name: String,
    state: AtomicU8,
    /// The process thread, registered before its first wait. `resume` may
    /// run before registration; then the process has not parked yet and
    /// will observe RUNNING without needing the unpark.
    proc_thread: OnceLock<Thread>,
    /// The driver thread, registered at the top of `Runtime::run`, strictly
    /// before any process can park or finish.
    driver_thread: OnceLock<Thread>,
}

impl ProcCtl {
    fn new(name: String) -> Self {
        ProcCtl {
            name,
            state: AtomicU8::new(CREATED),
            proc_thread: OnceLock::new(),
            driver_thread: OnceLock::new(),
        }
    }

    /// Process side: give the token back to the driver and wait for it to
    /// be granted again. One store + one unpark in each direction. `baton`
    /// is the explicit returned-to-driver flag the driver waits on — it
    /// cannot watch our `state`, because a direct handoff (see
    /// [`ProcCtl::park_to`]) also leaves it PARKED while another process
    /// runs.
    fn park(&self, baton: &AtomicBool) {
        let prev = self.state.swap(PARKED, Ordering::AcqRel);
        debug_assert_eq!(prev, RUNNING, "park by a thread that does not own the token");
        baton.store(true, Ordering::Release);
        self.driver_thread
            .get()
            .expect("driver registers its handle before any process runs")
            .unpark();
        self.wait_token_granted();
    }

    /// Process side: hand the run token directly to `next`, bypassing the
    /// driver entirely, then wait to be granted again. Two context switches
    /// instead of the four a park → driver → resume round trip costs. The
    /// caller must have checked that `next` is parked (or not yet started)
    /// and must leave the driver's baton untouched — the driver stays
    /// blocked, exactly as if the original process were still running.
    fn park_to(&self, next: &ProcCtl) {
        let prev = self.state.swap(PARKED, Ordering::AcqRel);
        debug_assert_eq!(prev, RUNNING, "handoff by a thread that does not own the token");
        let nprev = next.state.swap(RUNNING, Ordering::AcqRel);
        debug_assert!(
            matches!(nprev, PARKED | CREATED),
            "direct handoff to a process that is not waiting for the token"
        );
        if let Some(t) = next.proc_thread.get() {
            t.unpark();
        }
        self.wait_token_granted();
    }

    /// Process side, first entry: register our handle, then wait for the
    /// initial grant.
    fn wait_first_resume(&self) {
        let _ = self.proc_thread.set(std::thread::current());
        self.wait_token_granted();
    }

    fn wait_token_granted(&self) {
        // Single-waiter invariant: the only thread that ever waits for a
        // grant is the registered process thread itself.
        debug_assert!(
            self.proc_thread.get().is_some_and(|t| t.id() == std::thread::current().id()),
            "single-waiter invariant: only the process thread waits for the token"
        );
        let mut spins = 0;
        while self.state.load(Ordering::Acquire) != RUNNING {
            if spins < spin_limit() {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::park();
            }
        }
    }

    /// Driver side: hand the token to this process and block until the baton
    /// comes back to the driver — possibly after a chain of direct
    /// process→process handoffs starting at this process. Returns whether
    /// control was actually transferred (i.e. the process was not already
    /// done).
    fn resume_and_wait(&self, baton: &AtomicBool) -> bool {
        match self.state.load(Ordering::Acquire) {
            DONE => return false,
            s @ (PARKED | CREATED) => {
                let prev = self.state.swap(RUNNING, Ordering::AcqRel);
                debug_assert_eq!(prev, s, "token moved while the driver held it");
                if let Some(t) = self.proc_thread.get() {
                    t.unpark();
                }
            }
            _ => unreachable!("driver resumed a running process"),
        }
        wait_baton(baton);
        true
    }

    /// Process side: final token release. Any panic flag must be published
    /// (see `Shared::any_panicked`) before this, so the driver's acquire of
    /// the baton orders it.
    fn finish(&self, baton: &AtomicBool) {
        let prev = self.state.swap(DONE, Ordering::AcqRel);
        debug_assert_eq!(prev, RUNNING, "finish by a thread that does not own the token");
        baton.store(true, Ordering::Release);
        self.driver_thread
            .get()
            .expect("driver registers its handle before any process runs")
            .unpark();
    }

    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }

    fn is_parked_or_created(&self) -> bool {
        matches!(self.state.load(Ordering::Acquire), PARKED | CREATED)
    }
}

/// World + scheduler behind one mutex. Only one thread touches it at a time
/// by construction, so there is never contention — the mutex exists to
/// satisfy the borrow checker across threads.
struct Sim<W> {
    world: W,
    ctx: Ctx<W>,
}

struct Shared<W> {
    sim: Mutex<Sim<W>>,
    ctls: Vec<Arc<ProcCtl>>,
    /// Wakes of the current driver batch not yet resumed. The batch lives in
    /// the driver's private buffer, invisible to the scheduler's wake queue,
    /// so the sleep fast path must consult this count too: a process resumed
    /// mid-batch may not advance the clock while batch peers are still
    /// entitled to run at the current time. Synchronized by the run-token
    /// handoff (the driver only writes it while holding every token).
    inflight_wakes: std::sync::atomic::AtomicUsize,
    /// True while the run token is on its way back to the driver (set by
    /// `park`/`finish`, consumed by `wait_baton`). Direct process→process
    /// handoffs leave it false: the driver sleeps through the whole chain.
    baton: AtomicBool,
    /// Any process panicked. Set (before `finish` releases the baton) by the
    /// panicking thread, so the driver's post-resume check is one flag load
    /// instead of an O(ranks) scan over every `ProcCtl`.
    any_panicked: AtomicBool,
}

/// A handle a simulated process uses to touch the shared world, sleep, and
/// block. Cheap to clone would be possible but each process gets exactly one.
pub struct ProcEnv<W> {
    id: ProcId,
    shared: Arc<Shared<W>>,
    ctl: Arc<ProcCtl>,
    /// Completion flag reused by every timed [`sleep`](Self::sleep) this
    /// process performs (at most one is in flight at a time), so a sleep
    /// costs an `Arc` clone instead of an allocation.
    sleep_done: Arc<AtomicBool>,
}

impl<W: Send + 'static> ProcEnv<W> {
    /// This process's id (== its MPI rank in the middleware).
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.shared.sim.lock().ctx.now()
    }

    /// Run `f` with exclusive access to the world and scheduler.
    ///
    /// Do not call `with` re-entrantly from inside `f` — the lock is not
    /// re-entrant and doing so deadlocks (caught only at runtime).
    pub fn with<R>(&self, f: impl FnOnce(&mut W, &mut Ctx<W>) -> R) -> R {
        let mut g = self.shared.sim.lock();
        let Sim { world, ctx } = &mut *g;
        f(world, ctx)
    }

    /// Yield to the driver until someone calls `ctx.wake(self.id())`.
    ///
    /// May return spuriously (see module docs); re-check your condition.
    pub fn park(&self) {
        if self.drive_until_woken() {
            return;
        }
        self.ctl.park(&self.shared.baton);
    }

    /// Inline-driver fast path: instead of handing the run token back, the
    /// parking process fires due events itself — it still owns the token, the
    /// driver is blocked in `wait_baton`, and the lock serializes world
    /// access — reproducing the driver's exact sequence: fire events in
    /// (time, seq) order until a wake appears. A single-wake batch is then
    /// resolved without the driver: a batch of exactly `[self]` is consumed
    /// and we keep running (zero context switches for the hot blocking-recv
    /// cycle); a sole wake for a parked peer becomes a direct token handoff
    /// to it (two switches instead of four). Anything else — a mixed batch,
    /// deadline, an empty queue, batch peers still in flight — defers to the
    /// real driver by parking normally, with every event fired so far
    /// counted exactly as if the driver had fired it. Disabled under the
    /// reference discipline. Returns true when this process was woken.
    fn drive_until_woken(&self) -> bool {
        // Not-yet-resumed peers of the driver's current wake batch must run
        // before any further event fires; only the driver can resume them.
        if self.shared.inflight_wakes.load(Ordering::Acquire) != 0 {
            return false;
        }
        let next = {
            let mut g = self.shared.sim.lock();
            if g.ctx.is_reference() {
                return false;
            }
            loop {
                if g.ctx.has_wakes() {
                    match g.ctx.sole_wake() {
                        Some(p) if p == self.id => {
                            g.ctx.consume_sole_wake();
                            return true;
                        }
                        Some(p) if self.shared.ctls[p.0].is_parked_or_created() => {
                            g.ctx.consume_sole_wake();
                            break p;
                        }
                        // Mixed batch (or a wake aimed at a finished
                        // process): only the driver can run it correctly.
                        _ => return false,
                    }
                }
                match g.ctx.pop_event_due() {
                    crate::sched::Popped::Fired(f) => {
                        let Sim { world, ctx } = &mut *g;
                        f.call(world, ctx);
                    }
                    // Deadline bookkeeping and deadlock detection belong to
                    // the driver; park and let it look at the same state.
                    _ => return false,
                }
            }
            // Lock dropped here: the peer relocks the sim immediately on
            // resume.
        };
        self.ctl.park_to(&self.shared.ctls[next.0]);
        // The token came back: someone consumed a wake batch of `[self]`.
        true
    }

    /// Block until `poll` returns `Some`. `poll` runs under the world lock
    /// and is responsible for registering this process wherever the eventual
    /// wake will come from (waiter lists, timers, ...).
    pub fn block_on<R>(&self, mut poll: impl FnMut(&mut W, &mut Ctx<W>) -> Option<R>) -> R {
        loop {
            if let Some(r) = self.with(&mut poll) {
                return r;
            }
            self.park();
        }
    }

    /// Advance this process's local time by `d` without doing anything —
    /// models computation or CPU charges. Simulated time continues for the
    /// network and for other processes.
    ///
    /// Consecutive CPU charges batch: when the simulation is quiescent (no
    /// pending wakes, no event due at or before `now + d`, deadline not
    /// crossed) the clock advances inline and control never leaves this
    /// thread. Otherwise a real timer is scheduled and the process parks;
    /// while it is parked here, the scheduler suppresses foreign wakes —
    /// they are provably spurious, since this loop re-checks only a private
    /// `done` flag and parks again without touching the world.
    pub fn sleep(&self, d: Dur) {
        if d.is_zero() {
            return;
        }
        if self.shared.inflight_wakes.load(Ordering::Acquire) == 0
            && self.with(|_, ctx| ctx.try_advance_sleep(d))
        {
            return;
        }
        let done = &self.sleep_done;
        done.store(false, Ordering::Release);
        let done2 = Arc::clone(done);
        let id = self.id;
        self.with(move |_, ctx| {
            ctx.begin_sleep(id);
            ctx.schedule_in(d, move |_, ctx| {
                done2.store(true, Ordering::Release);
                ctx.finish_sleep_and_wake(id);
            });
        });
        while !done.load(Ordering::Acquire) {
            self.park();
        }
    }

    /// Let every other currently-runnable process run before continuing.
    pub fn yield_now(&self) {
        let id = self.id;
        self.with(|_, ctx| ctx.wake(id));
        self.park();
    }
}

/// Outcome of a completed simulation run.
#[derive(Debug)]
pub struct RunOutcome<W> {
    /// Final world state.
    pub world: W,
    /// Simulated time at which the last process finished (or the deadline).
    pub sim_time: SimTime,
    /// Total events fired (diagnostic). Identical under both wakeup
    /// disciplines: inline-advanced sleeps count their skipped timer.
    pub events: u64,
    /// Driver→process ownership transfers actually performed (diagnostic).
    /// This is the count the runtime overhaul drives down; it differs
    /// between disciplines by design.
    pub handoffs: u64,
    /// Wakes that never became a handoff: suppressed spurious wakes plus
    /// sleeps satisfied by the inline fast path (diagnostic).
    pub wakes_coalesced: u64,
    /// True if the run was cut short by the deadline.
    pub hit_deadline: bool,
    /// Packet trains emitted through the burst path (diagnostic; zero under
    /// the reference discipline by design).
    pub bursts_total: u64,
    /// Packets carried inside those trains; each still counts in `events`.
    pub pkts_fused: u64,
    /// Timers that took the O(1) wheel insert (diagnostic).
    pub wheel_hits: u64,
    /// Timers beyond the wheel horizon that fell back to the heap.
    pub heap_falls: u64,
}

type ProcMain<W> = Box<dyn FnOnce(ProcEnv<W>) + Send + 'static>;

/// Builds and drives one simulation: a world, a scheduler, and a set of
/// virtual processes.
type PreEvent<W> = (SimTime, Box<dyn FnOnce(&mut W, &mut Ctx<W>) + Send + 'static>);

pub struct Runtime<W> {
    world: Option<W>,
    seed: u64,
    mains: Vec<(String, ProcMain<W>)>,
    deadline: SimTime,
    pre_events: Vec<PreEvent<W>>,
    tracer: Option<trace::Tracer>,
}

impl<W: Send + 'static> Runtime<W> {
    /// Create a runtime over `world`, deriving all randomness from `seed`.
    pub fn new(world: W, seed: u64) -> Self {
        Runtime {
            world: Some(world),
            seed,
            mains: Vec::new(),
            deadline: SimTime::MAX,
            pre_events: Vec::new(),
            tracer: None,
        }
    }

    /// Abort the run (returning `hit_deadline = true`) if simulated time
    /// would pass `deadline`. Guards against runaway simulations in tests.
    pub fn set_deadline(&mut self, deadline: SimTime) {
        self.deadline = deadline;
    }

    /// Install a flight recorder; it is handed to the scheduler context
    /// before the first process runs, so every event of the run is visible
    /// to the hooks. Tracing never perturbs the simulation (see
    /// [`Ctx::trace_emit`]).
    pub fn set_tracer(&mut self, tracer: Option<trace::Tracer>) {
        self.tracer = tracer;
    }

    /// Register a process. Ids are assigned densely in spawn order.
    pub fn spawn(&mut self, name: impl Into<String>, f: impl FnOnce(ProcEnv<W>) + Send + 'static) -> ProcId {
        let id = ProcId(self.mains.len());
        self.mains.push((name.into(), Box::new(f)));
        id
    }

    /// Schedule an event before the run starts (watchdogs, fault injection).
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static) {
        self.pre_events.push((at, Box::new(f)));
    }

    /// Drive the simulation to completion: all processes finished, or
    /// deadlock (panics), or deadline.
    pub fn run(mut self) -> RunOutcome<W> {
        let world = self.world.take().expect("run() called twice");
        let ctx = Ctx::new(derive_rng(self.seed, u64::MAX));
        let ctls: Vec<Arc<ProcCtl>> = self
            .mains
            .iter()
            .map(|(name, _)| Arc::new(ProcCtl::new(name.clone())))
            .collect();
        let shared = Arc::new(Shared {
            sim: Mutex::new(Sim { world, ctx }),
            ctls,
            inflight_wakes: std::sync::atomic::AtomicUsize::new(0),
            baton: AtomicBool::new(false),
            any_panicked: AtomicBool::new(false),
        });

        // Spawn process threads; each waits for its first resume.
        let mut joins: Vec<JoinHandle<()>> = Vec::with_capacity(self.mains.len());
        for (i, (name, main)) in self.mains.drain(..).enumerate() {
            let ctl = Arc::clone(&shared.ctls[i]);
            let shared2 = Arc::clone(&shared);
            let env = ProcEnv {
                id: ProcId(i),
                shared: Arc::clone(&shared),
                ctl: Arc::clone(&ctl),
                sleep_done: Arc::new(AtomicBool::new(false)),
            };
            let handle = std::thread::Builder::new()
                .name(format!("sim-{name}"))
                .spawn(move || {
                    ctl.wait_first_resume();
                    let result = catch_unwind(AssertUnwindSafe(move || main(env)));
                    if result.is_err() {
                        shared2.any_panicked.store(true, Ordering::Release);
                    }
                    ctl.finish(&shared2.baton);
                    if let Err(payload) = result {
                        // Preserve the panic message in test output; the
                        // driver aborts the run when it notices.
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic".into());
                        eprintln!("simulated process panicked: {msg}");
                    }
                })
                .expect("failed to spawn process thread");
            joins.push(handle);
        }

        // Register the driver's handle before any process can park or
        // finish, then seed: every process gets an initial wakeup, in id
        // order. The discipline is whatever this thread selected.
        for ctl in &shared.ctls {
            let _ = ctl.driver_thread.set(std::thread::current());
        }
        {
            let mut g = shared.sim.lock();
            g.ctx.set_reference(reference_discipline());
            g.ctx.set_deadline(self.deadline);
            g.ctx.set_tracer(self.tracer.take());
            for (at, f) in self.pre_events.drain(..) {
                g.ctx.schedule_at(at, f);
            }
            for i in 0..shared.ctls.len() {
                g.ctx.wake(ProcId(i));
            }
        }

        let mut hit_deadline = false;
        let mut handoffs: u64 = 0;
        let mut wake_buf: Vec<ProcId> = Vec::new();
        'driver: loop {
            // Drain wakeups first: same-timestamp readiness beats timers.
            // Batches repeat until no wake is pending; wakes issued during a
            // batch land in the next one (see `take_wakes_into`).
            loop {
                shared.sim.lock().ctx.take_wakes_into(&mut wake_buf);
                if wake_buf.is_empty() {
                    break;
                }
                shared.inflight_wakes.store(wake_buf.len(), Ordering::Release);
                for p in &wake_buf {
                    // The process we are about to resume no longer counts as
                    // in flight; only not-yet-resumed batch peers gate the
                    // sleep fast path.
                    shared.inflight_wakes.fetch_sub(1, Ordering::Release);
                    let ctl = &shared.ctls[p.0];
                    if ctl.resume_and_wait(&shared.baton) {
                        handoffs += 1;
                    }
                    // The baton may have hopped through several processes
                    // before returning; any of them could have panicked.
                    if shared.any_panicked.load(Ordering::Acquire) {
                        break 'driver;
                    }
                }
            }

            if shared.ctls.iter().all(|c| c.is_done()) {
                break;
            }

            // Fire a run of timed events back to back under one lock
            // acquisition, stopping as soon as an event makes a process
            // runnable — the reference discipline resumes it before firing
            // the next event, and so must we for bit-identical worlds.
            let fired_any = {
                let mut g = shared.sim.lock();
                let mut fired = false;
                loop {
                    if g.ctx.has_wakes() {
                        break;
                    }
                    match g.ctx.pop_event_due() {
                        crate::sched::Popped::Fired(f) => {
                            let Sim { world, ctx } = &mut *g;
                            f.call(world, ctx);
                            fired = true;
                        }
                        crate::sched::Popped::PastBound => {
                            hit_deadline = true;
                            break;
                        }
                        crate::sched::Popped::Empty => break,
                    }
                }
                fired
            };

            if fired_any {
                continue;
            }
            if hit_deadline {
                break;
            }

            // No wakes, no events, processes still alive: deadlock.
            if !shared.sim.lock().ctx.has_wakes() {
                let stuck: Vec<&str> = shared
                    .ctls
                    .iter()
                    .filter(|c| c.is_parked_or_created())
                    .map(|c| c.name.as_str())
                    .collect();
                panic!("simulation deadlock: no pending events, processes still blocked: {stuck:?}");
            }
        }

        let panicked = shared.any_panicked.load(Ordering::Acquire);

        // On deadline or panic, stranded threads are parked forever; we must
        // not join them. In the normal path all are done and join cleanly.
        if !hit_deadline && !panicked {
            for j in joins {
                let _ = j.join();
            }
        } else {
            std::mem::forget(joins);
        }

        if panicked {
            panic!("a simulated process panicked; see stderr for details");
        }

        let shared = match Arc::try_unwrap(shared) {
            Ok(s) => s,
            Err(arc) => {
                // Threads stranded by a deadline still hold clones; steal the
                // world by swapping. Safe: they are parked and will never run.
                let g = arc.sim.lock();
                let events = g.ctx.events_fired();
                let sim_time = g.ctx.now();
                // This path only happens on deadline; require W: Default?
                // Avoid that bound: panic with a clear message instead.
                drop(g);
                let _ = arc;
                panic!(
                    "deadline hit at {sim_time} after {events} events; \
                     world cannot be recovered from a deadline-aborted run"
                );
            }
        };
        let sim = shared.sim.into_inner();
        RunOutcome {
            sim_time: sim.ctx.now(),
            events: sim.ctx.events_fired(),
            handoffs,
            wakes_coalesced: sim.ctx.wakes_coalesced(),
            bursts_total: sim.ctx.bursts(),
            pkts_fused: sim.ctx.fused_pkts(),
            wheel_hits: sim.ctx.wheel_hits(),
            heap_falls: sim.ctx.heap_falls(),
            world: sim.world,
            hit_deadline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct W {
        log: Vec<String>,
    }

    #[test]
    fn single_process_runs_to_completion() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("p0", |env: ProcEnv<W>| {
            env.with(|w, _| w.log.push("hello".into()));
        });
        let out = rt.run();
        assert_eq!(out.world.log, vec!["hello"]);
        assert_eq!(out.sim_time, SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_time() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("p0", |env: ProcEnv<W>| {
            env.sleep(Dur::from_millis(250));
            assert_eq!(env.now(), SimTime::ZERO + Dur::from_millis(250));
        });
        let out = rt.run();
        assert_eq!(out.sim_time, SimTime::ZERO + Dur::from_millis(250));
    }

    #[test]
    fn processes_interleave_deterministically() {
        fn run_once() -> Vec<String> {
            let mut rt = Runtime::new(W::default(), 7);
            for p in 0..4 {
                rt.spawn(format!("p{p}"), move |env: ProcEnv<W>| {
                    for step in 0..3 {
                        env.sleep(Dur::from_millis(10 * (p as u64 + 1)));
                        env.with(|w, _| w.log.push(format!("p{p}.{step}")));
                    }
                });
            }
            rt.run().world.log
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b, "same seed must give identical interleavings");
        assert_eq!(a.len(), 12);
        assert_eq!(a[0], "p0.0", "shortest sleeper logs first");
    }

    #[test]
    fn block_on_wakes_from_event() {
        struct Flag {
            ready: bool,
        }
        let mut rt = Runtime::new(Flag { ready: false }, 1);
        rt.spawn("waiter", |env: ProcEnv<Flag>| {
            let id = env.id();
            // Arrange for an event to set the flag and wake us.
            env.with(move |_, ctx| {
                ctx.schedule_in(Dur::from_secs(1), move |w: &mut Flag, ctx| {
                    w.ready = true;
                    ctx.wake(id);
                });
            });
            env.block_on(|w, _| if w.ready { Some(()) } else { None });
            assert_eq!(env.now(), SimTime::ZERO + Dur::from_secs(1));
        });
        let out = rt.run();
        assert!(out.world.ready);
    }

    #[test]
    fn two_processes_ping_pong_via_world() {
        // p0 waits for a token p1 deposits after 5ms; then p0 responds and
        // p1 waits for the response. Exercises wake() round trips.
        #[derive(Default)]
        struct Mailbox {
            to_p0: Option<u32>,
            to_p1: Option<u32>,
        }
        let mut rt = Runtime::new(Mailbox::default(), 3);
        rt.spawn("p0", |env: ProcEnv<Mailbox>| {
            let v = env.block_on(|w, _| w.to_p0.take());
            env.with(|w, ctx| {
                w.to_p1 = Some(v + 1);
                ctx.wake(ProcId(1));
            });
        });
        rt.spawn("p1", |env: ProcEnv<Mailbox>| {
            env.sleep(Dur::from_millis(5));
            env.with(|w, ctx| {
                w.to_p0 = Some(41);
                ctx.wake(ProcId(0));
            });
            let v = env.block_on(|w, _| w.to_p1.take());
            assert_eq!(v, 42);
        });
        rt.run();
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("stuck", |env: ProcEnv<W>| {
            env.park(); // nothing will ever wake us
        });
        rt.run();
    }

    #[test]
    #[should_panic(expected = "simulated process panicked")]
    fn process_panic_propagates() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("boom", |_env: ProcEnv<W>| {
            panic!("intentional test panic");
        });
        rt.run();
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("a", |env: ProcEnv<W>| {
            env.with(|w, _| w.log.push("a1".into()));
            env.yield_now();
            env.with(|w, _| w.log.push("a2".into()));
        });
        rt.spawn("b", |env: ProcEnv<W>| {
            env.with(|w, _| w.log.push("b1".into()));
        });
        let out = rt.run();
        assert_eq!(out.world.log, vec!["a1", "b1", "a2"]);
    }

    #[test]
    fn spurious_wake_does_not_break_sleep() {
        // A process sleeping 100ms gets woken at 10ms by an unrelated event;
        // sleep must still take the full 100ms.
        let mut rt = Runtime::new(W::default(), 1);
        rt.spawn("sleeper", |env: ProcEnv<W>| {
            let id = env.id();
            env.with(move |_, ctx| {
                ctx.schedule_in(Dur::from_millis(10), move |_, ctx| ctx.wake(id));
            });
            env.sleep(Dur::from_millis(100));
            assert_eq!(env.now(), SimTime::ZERO + Dur::from_millis(100));
        });
        rt.run();
    }
}
