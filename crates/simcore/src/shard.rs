//! Sharded parallel DES with conservative lookahead.
//!
//! The per-event machinery (timer wheel, event slab, token-baton runtime)
//! gets the cost of *one* event down to ~1 µs; this module multiplies it.
//! Nodes are partitioned round-robin across `shards` worker threads
//! (`shard_of(node) = node % shards`), each shard running its own [`Ctx`] —
//! its own wheel, slab, clock, and RNG stream. The minimum cross-node
//! latency `L` (link propagation + switch transit) is the **conservative
//! lookahead bound**: a message sent at time `t` cannot arrive before
//! `t + L`, so a shard may execute everything in the epoch `[k·L, (k+1)·L)`
//! without observing its neighbors at all. At the epoch boundary the shards
//! barrier, exchange staged messages through per-shard mailboxes, and merge
//! each inbox in deterministic `(arrival_time, src_node, src_seq)` order.
//!
//! # Determinism contract
//!
//! Results are bit-identical at any shard count, given the same seed:
//!
//! * **Every** inter-node message — intra-shard or cross-shard — takes the
//!   mailbox path and is merged in `(at, src, sseq)` order. The key is a
//!   property of the traffic, not of the partition.
//! * Node handlers touch only their own node's state plus the mailbox, so
//!   the firing interleave of *different* nodes' equal-time events (which
//!   does depend on the partition) is semantically invisible.
//! * For one node, the relative order of its local timers vs. its merged
//!   arrivals is partition-invariant: in-epoch `schedule_*` calls always
//!   draw sequence numbers before the barrier insertions of that epoch, and
//!   both the firing epoch of the scheduling handler and the sending epoch
//!   of the message are determined by simulated time alone.
//! * Randomness that shapes traffic (loss draws, jitter) must come from
//!   per-node streams ([`crate::derive_rng`]), never from a shard-global
//!   RNG whose consumption order would depend on the partition.
//!
//! Epochs are *adaptive*: each barrier round agrees on the global minimum
//! next-event time `gmin` and executes the window `[gmin, gmin + L)` — a
//! full lookahead anchored at the work, rather than the fixed grid cell
//! `[k·L, (k+1)·L)` that merely contains it (which wastes half of `L` per
//! round on average and spins through empty cells). An idle second costs
//! one barrier round, and a burst spanning `1.5·L` costs two rounds, not
//! three. The window sequence is a pure function of the traffic — `gmin`
//! is agreed at the barrier — so epoch counts, merge batching, and results
//! stay bit-identical at every shard count.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::derive_rng;
use crate::sched::{Ctx, Popped};
use crate::time::{Dur, SimTime};

/// Which shard owns a node. Round-robin keeps hot neighbors (e.g. the
/// incast victim and its senders) spread across workers.
#[inline]
pub fn shard_of(node: u32, shards: u32) -> u32 {
    node % shards
}

/// Index of `node` within its owning shard's local arrays.
#[inline]
pub fn local_ix(node: u32, shards: u32) -> usize {
    (node / shards) as usize
}

/// Shard count the engine should actually run with: `SIM_CHECK=1` shadow
/// runs set the thread-local reference discipline, which forces the
/// sequential (`shards = 1`) engine so the metered sharded run can be
/// compared bit-for-bit against it.
pub fn effective_shards(requested: usize) -> usize {
    if crate::process::reference_discipline() {
        1
    } else {
        requested.max(1)
    }
}

/// One message in flight between nodes. `sseq` is the per-source-node
/// sequence number; `(at, src, sseq)` is the total merge order.
#[derive(Debug, Clone)]
pub struct Inbound<M> {
    /// Arrival instant at the destination (computed by the sender from
    /// sender-owned state, so it is partition-invariant).
    pub at: SimTime,
    /// Sending node (global id).
    pub src: u32,
    /// Per-source monotonic sequence number.
    pub sseq: u32,
    /// Destination node (global id).
    pub dst: u32,
    /// Payload.
    pub msg: M,
}

/// A model that runs under the sharded engine. The world is the per-shard
/// state (the nodes this shard owns); associated functions rather than
/// methods so `deliver` can borrow the whole [`ShardSim`] mutably.
pub trait ShardWorld: Sized + Send + 'static {
    /// Inter-node message payload.
    type Msg: Send + 'static;

    /// Schedule this shard's initial events (runs once, at time zero,
    /// before the first epoch). May send; initial sends are flushed before
    /// any event executes.
    fn init(sim: &mut ShardSim<Self>, ctx: &mut Ctx<ShardSim<Self>>);

    /// One merged message has arrived for `m.dst` (owned by this shard).
    fn deliver(sim: &mut ShardSim<Self>, ctx: &mut Ctx<ShardSim<Self>>, m: Inbound<Self::Msg>);
}

/// Staged outgoing message (not yet routed to its destination shard).
struct Outgoing<M> {
    at: SimTime,
    src: u32,
    sseq: u32,
    dst: u32,
    msg: M,
}

/// The sending half of a shard: outbox, per-node sequence counters, and
/// the lookahead guard. A separate struct from the world so a handler can
/// hold `&mut sim.world` and `&mut sim.mail` at the same time.
pub struct Mailbox<M> {
    shard: u32,
    shards: u32,
    lookahead: Dur,
    /// End of the epoch currently executing; sends must arrive at or after
    /// it (the conservative-lookahead contract).
    epoch_end: SimTime,
    out: Vec<Outgoing<M>>,
    /// Next send sequence per owned node, indexed by `local_ix`.
    sseq: Vec<u32>,
    sends: u64,
}

impl<M> Mailbox<M> {
    /// This shard's index.
    #[inline]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Total shard count.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The conservative lookahead bound `L`.
    #[inline]
    pub fn lookahead(&self) -> Dur {
        self.lookahead
    }

    /// Messages sent by this shard so far.
    #[inline]
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Does this shard own `node`?
    #[inline]
    pub fn owns(&self, node: u32) -> bool {
        shard_of(node, self.shards) == self.shard
    }

    /// Send `msg` from `src` (owned by this shard) to `dst`, arriving at
    /// `at`. The arrival must respect the lookahead bound: `at` may not
    /// fall inside the epoch currently executing.
    pub fn send(&mut self, src: u32, dst: u32, at: SimTime, msg: M) {
        debug_assert!(self.owns(src), "send from a node this shard does not own");
        assert!(
            at >= self.epoch_end,
            "lookahead violation: send from node {src} arrives at {at:?} inside the current epoch (end {:?}); the \
             model's minimum cross-node latency is smaller than the configured lookahead",
            self.epoch_end,
        );
        let ix = local_ix(src, self.shards);
        if self.sseq.len() <= ix {
            self.sseq.resize(ix + 1, 0);
        }
        let sseq = self.sseq[ix];
        self.sseq[ix] += 1;
        self.sends += 1;
        self.out.push(Outgoing { at, src, sseq, dst, msg });
    }
}

/// Per-shard simulation state handed to every event closure: the user's
/// world plus the mailbox. This is the `W` of the shard's [`Ctx`].
pub struct ShardSim<W: ShardWorld> {
    /// The model's per-shard state.
    pub world: W,
    /// The sending half.
    pub mail: Mailbox<W::Msg>,
}

impl<W: ShardWorld> ShardSim<W> {
    /// This shard's index.
    #[inline]
    pub fn shard(&self) -> u32 {
        self.mail.shard
    }

    /// Total shard count.
    #[inline]
    pub fn shards(&self) -> u32 {
        self.mail.shards
    }

    /// The conservative lookahead bound `L`.
    #[inline]
    pub fn lookahead(&self) -> Dur {
        self.mail.lookahead
    }

    /// Send `msg` from `src` to `dst`, arriving at `at`. See
    /// [`Mailbox::send`].
    #[inline]
    pub fn send(&mut self, src: u32, dst: u32, at: SimTime, msg: W::Msg) {
        self.mail.send(src, dst, at, msg)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ShardCfg {
    /// Worker count; one [`Ctx`] per shard. Must equal the number of worlds
    /// passed to [`run_sharded`]. Shards with no nodes are fine — they just
    /// ride the barriers.
    pub shards: usize,
    /// Conservative lookahead `L` (minimum cross-node latency). Must be
    /// positive: zero lookahead would mean zero-latency links, for which no
    /// conservative window exists.
    pub lookahead: Dur,
    /// Inclusive stop time; [`SimTime::MAX`] to run until the event queues
    /// drain.
    pub deadline: SimTime,
    /// Master seed; shard `s` gets the RNG stream `derive_rng(seed, s)`.
    /// (Models needing invariant randomness derive per-*node* streams.)
    pub seed: u64,
    /// Per-shard flight recorders (merged by the caller at sink time). When
    /// present, must hold one tracer per shard.
    pub tracers: Option<Vec<trace::Tracer>>,
}

impl ShardCfg {
    /// Config with the given shard count and lookahead, no deadline.
    pub fn new(shards: usize, lookahead: Dur, seed: u64) -> ShardCfg {
        ShardCfg { shards, lookahead, deadline: SimTime::MAX, seed, tracers: None }
    }
}

/// What one finished run looks like. Everything the determinism contract
/// covers (`worlds`, `end_time`, `events`, `sends_total`, `epochs`) is
/// bit-identical across shard counts; `cross_shard_pkts` and the queue
/// meters legitimately depend on the partition.
#[derive(Debug)]
pub struct ShardOutcome<W> {
    /// Per-shard worlds, in shard order.
    pub worlds: Vec<W>,
    /// Shard count the run used.
    pub shards: u32,
    /// The lookahead bound, for reporting.
    pub lookahead: Dur,
    /// Latest shard clock at exit.
    pub end_time: SimTime,
    /// Events fired, summed over shards (partition-invariant).
    pub events: u64,
    /// Messages sent, summed over shards (partition-invariant).
    pub sends_total: u64,
    /// Barrier rounds that executed an epoch.
    pub epochs: u64,
    /// Messages whose source and destination shards differed.
    pub cross_shard_pkts: u64,
    /// Timer-wheel hits, summed over shards.
    pub wheel_hits: u64,
    /// Heap falls, summed over shards.
    pub heap_falls: u64,
    /// True when the deadline cut the run short of queue exhaustion.
    pub hit_deadline: bool,
}

/// Sense-reversing spin barrier. Epochs are tens of microseconds of work;
/// a mutex/condvar barrier would cost a wakeup round-trip per phase, so
/// waiters spin briefly and then yield.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

/// Prefix of the panic a poisoned barrier raises in the *surviving*
/// workers. [`run_sharded`] filters these out so the panic that reaches the
/// caller is the one from the worker that actually failed.
const PEER_PANIC: &str = "peer shard worker panicked";

impl SpinBarrier {
    fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Release every current and future waiter with a panic. Called when a
    /// worker dies mid-protocol: without it the surviving shards would spin
    /// at the next barrier forever.
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("{PEER_PANIC}: released from the epoch barrier");
        }
    }

    fn wait(&self) {
        self.check_poison();
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                self.check_poison();
                spins += 1;
                if spins < 4096 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Is this panic payload the barrier's own release panic (as opposed to the
/// root cause from the worker that died first)?
fn is_peer_release(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<String>().is_some_and(|s| s.starts_with(PEER_PANIC))
        || p.downcast_ref::<&str>().is_some_and(|s| s.starts_with(PEER_PANIC))
}

/// Per-worker result, folded into the [`ShardOutcome`].
struct WorkerDone<W> {
    world: W,
    now: SimTime,
    events: u64,
    sends: u64,
    cross: u64,
    wheel_hits: u64,
    heap_falls: u64,
    epochs: u64,
    hit_deadline: bool,
}

/// Run `worlds` (one per shard) to completion under the sharded engine.
///
/// Panics if `cfg.lookahead` is zero or `worlds.len() != cfg.shards`.
/// With `cfg.shards == 1` no thread is spawned and no barrier is taken —
/// that path *is* the sequential reference discipline, yet it still routes
/// every message through the sorted-mailbox merge, so its results equal the
/// parallel engine's by construction.
pub fn run_sharded<W: ShardWorld>(mut cfg: ShardCfg, worlds: Vec<W>) -> ShardOutcome<W> {
    let shards = cfg.shards.max(1);
    assert!(
        cfg.lookahead > Dur::ZERO,
        "sharded DES needs a positive lookahead: a zero-latency cross-node link admits no conservative window"
    );
    assert_eq!(worlds.len(), shards, "need exactly one world per shard");
    if let Some(ts) = &cfg.tracers {
        assert_eq!(ts.len(), shards, "need exactly one tracer per shard");
    }

    let inboxes: Vec<Mutex<Vec<Outgoing<W::Msg>>>> =
        (0..shards).map(|_| Mutex::new(Vec::new())).collect();
    let next_times: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(u64::MAX)).collect();
    let barrier = SpinBarrier::new(shards);
    let mut tracers: Vec<Option<trace::Tracer>> = match cfg.tracers.take() {
        Some(ts) => ts.into_iter().map(Some).collect(),
        None => (0..shards).map(|_| None).collect(),
    };

    let mut results: Vec<Option<WorkerDone<W>>> = Vec::with_capacity(shards);
    if shards == 1 {
        let world = worlds.into_iter().next().unwrap();
        results.push(Some(worker(&cfg, 0, world, tracers[0].take(), &inboxes, &next_times, &barrier)));
    } else {
        let mut slots: Vec<Option<WorkerDone<W>>> = (0..shards).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(shards);
            for (me, (world, tracer)) in worlds.into_iter().zip(tracers.iter_mut()).enumerate() {
                let cfg = &cfg;
                let inboxes = &inboxes;
                let next_times = &next_times;
                let barrier = &barrier;
                let tracer = tracer.take();
                handles.push(scope.spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker(cfg, me as u32, world, tracer, inboxes, next_times, barrier)
                    }));
                    if r.is_err() {
                        // Release the peers: they would otherwise spin at
                        // the next epoch barrier forever waiting for us.
                        barrier.poison();
                    }
                    r
                }));
            }
            // Join everything first, then re-raise the most informative
            // panic: the root cause from the worker that died, not the
            // barrier-release panics its death triggered in the survivors.
            let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
            for (slot, h) in slots.iter_mut().zip(handles) {
                match h.join().expect("shard worker thread died outside catch_unwind") {
                    Ok(done) => *slot = Some(done),
                    Err(p) => {
                        let replace = match &first_panic {
                            None => true,
                            Some(cur) => is_peer_release(cur.as_ref()) && !is_peer_release(p.as_ref()),
                        };
                        if replace {
                            first_panic = Some(p);
                        }
                    }
                }
            }
            if let Some(p) = first_panic {
                std::panic::resume_unwind(p);
            }
        });
        results = slots;
    }

    let mut out = ShardOutcome {
        worlds: Vec::with_capacity(shards),
        shards: shards as u32,
        lookahead: cfg.lookahead,
        end_time: SimTime::ZERO,
        events: 0,
        sends_total: 0,
        epochs: 0,
        cross_shard_pkts: 0,
        wheel_hits: 0,
        heap_falls: 0,
        hit_deadline: false,
    };
    for r in results.into_iter().map(|r| r.expect("missing worker result")) {
        out.end_time = out.end_time.max(r.now);
        out.events += r.events;
        out.sends_total += r.sends;
        out.cross_shard_pkts += r.cross;
        out.wheel_hits += r.wheel_hits;
        out.heap_falls += r.heap_falls;
        // Every worker computes the same epoch/deadline story.
        out.epochs = r.epochs;
        out.hit_deadline = r.hit_deadline;
        out.worlds.push(r.world);
    }
    out
}

/// One shard's event loop: `publish → barrier → decide epoch → execute →
/// exchange → barrier → merge inbox`, repeated until the global queue
/// drains or the deadline passes.
fn worker<W: ShardWorld>(
    cfg: &ShardCfg,
    me: u32,
    world: W,
    tracer: Option<trace::Tracer>,
    inboxes: &[Mutex<Vec<Outgoing<W::Msg>>>],
    next_times: &[AtomicU64],
    barrier: &SpinBarrier,
) -> WorkerDone<W> {
    let shards = inboxes.len() as u32;
    let l_ns = cfg.lookahead.as_nanos();
    let deadline_ns = cfg.deadline.as_nanos();

    let mut ctx: Ctx<ShardSim<W>> = Ctx::new(derive_rng(cfg.seed, me as u64));
    ctx.set_tracer(tracer);
    let mut sim = ShardSim {
        world,
        mail: Mailbox {
            shard: me,
            shards,
            lookahead: cfg.lookahead,
            epoch_end: SimTime::ZERO,
            out: Vec::new(),
            sseq: Vec::new(),
            sends: 0,
        },
    };

    // Staging bins, one per destination shard, reused across epochs.
    let mut bins: Vec<Vec<Outgoing<W::Msg>>> = (0..shards).map(|_| Vec::new()).collect();
    let mut inbox_buf: Vec<Outgoing<W::Msg>> = Vec::new();
    let mut cross = 0u64;
    let mut epochs = 0u64;
    let mut hit_deadline = false;
    // End of the last executed window. Floors the next window so the end
    // times strictly increase even if a shard publishes a stale (already
    // executed) conservative lower bound.
    let mut prev_end = 0u64;

    // Initial events (and initial sends, flushed before anything runs —
    // nothing has executed yet, so they are exempt from the epoch bound).
    W::init(&mut sim, &mut ctx);
    exchange(&mut sim, &mut bins, inboxes, me, &mut cross);
    barrier.wait();
    merge_inbox::<W>(&mut ctx, &mut inbox_buf, &inboxes[me as usize]);

    loop {
        // Publish my conservative next-event time; the barrier makes every
        // shard's value visible, and each shard derives the same decision.
        let next = ctx.next_event_key().map_or(u64::MAX, |(t, _)| t.as_nanos());
        next_times[me as usize].store(next, Ordering::Release);
        barrier.wait();
        let gmin = next_times.iter().map(|t| t.load(Ordering::Acquire)).min().unwrap();
        if gmin == u64::MAX {
            break; // queues drained everywhere, nothing staged
        }
        if gmin > deadline_ns {
            hit_deadline = true;
            break;
        }

        // Adaptive window: anchor the epoch at the global minimum and run a
        // full lookahead past it, `[gmin, gmin + L)`, instead of snapping to
        // the fixed grid cell `[k·L, (k+1)·L)` that merely *contains* `gmin`
        // (which on average wastes half of `L` per barrier). Safe: every
        // pending event fires at `t ≥ gmin`, so any send it makes arrives at
        // `t + L ≥ gmin + L = e_end`. Deterministic: `gmin` is the global
        // minimum agreed at the barrier — a property of the traffic, not of
        // the partition — so every shard count derives the same window
        // sequence. `prev_end` floors the anchor so a stale conservative
        // bound from an empty shard cannot stall or shrink the window.
        let gmin_eff = gmin.max(prev_end);
        let e_end_ns = gmin_eff.saturating_add(l_ns);
        prev_end = e_end_ns;
        sim.mail.epoch_end = SimTime::from_nanos(e_end_ns);
        ctx.set_deadline(SimTime::from_nanos((e_end_ns - 1).min(deadline_ns)));
        loop {
            match ctx.pop_event_due() {
                Popped::Fired(ev) => ev.call(&mut sim, &mut ctx),
                Popped::PastBound | Popped::Empty => break,
            }
        }
        epochs += 1;

        exchange(&mut sim, &mut bins, inboxes, me, &mut cross);
        barrier.wait();
        merge_inbox::<W>(&mut ctx, &mut inbox_buf, &inboxes[me as usize]);
    }

    WorkerDone {
        now: ctx.now(),
        events: ctx.events_fired(),
        sends: sim.mail.sends,
        cross,
        wheel_hits: ctx.wheel_hits(),
        heap_falls: ctx.heap_falls(),
        epochs,
        hit_deadline,
        world: sim.world,
    }
}

/// Route this epoch's staged sends into the destination shards' inboxes.
fn exchange<W: ShardWorld>(
    sim: &mut ShardSim<W>,
    bins: &mut [Vec<Outgoing<W::Msg>>],
    inboxes: &[Mutex<Vec<Outgoing<W::Msg>>>],
    me: u32,
    cross: &mut u64,
) {
    if sim.mail.out.is_empty() {
        return;
    }
    let shards = bins.len() as u32;
    for o in sim.mail.out.drain(..) {
        let d = shard_of(o.dst, shards);
        if d != me {
            *cross += 1;
        }
        bins[d as usize].push(o);
    }
    for (d, bin) in bins.iter_mut().enumerate() {
        if !bin.is_empty() {
            inboxes[d].lock().unwrap().append(bin);
        }
    }
}

/// Drain and sort this shard's inbox, inserting each arrival as a local
/// event. The `(at, src, sseq)` sort plus the scheduler's FIFO tie-break on
/// equal timestamps makes the delivery order a pure function of the
/// traffic.
fn merge_inbox<W: ShardWorld>(
    ctx: &mut Ctx<ShardSim<W>>,
    buf: &mut Vec<Outgoing<W::Msg>>,
    inbox: &Mutex<Vec<Outgoing<W::Msg>>>,
) {
    debug_assert!(buf.is_empty());
    std::mem::swap(buf, &mut *inbox.lock().unwrap());
    if buf.is_empty() {
        return;
    }
    buf.sort_unstable_by_key(|o| (o.at, o.src, o.sseq));
    for o in buf.drain(..) {
        let m = Inbound { at: o.at, src: o.src, sseq: o.sseq, dst: o.dst, msg: o.msg };
        ctx.schedule_at(m.at, move |sim, ctx| W::deliver(sim, ctx, m));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong mesh: every node fires a message to its successor; each
    /// arrival bumps a counter and forwards until `hops` runs out.
    struct Ring {
        nodes: u32,
        hops: u32,
        counts: Vec<u64>,
        last_at: Vec<u64>,
    }

    impl Ring {
        fn new(shard: u32, shards: u32, nodes: u32, hops: u32) -> Ring {
            let local = (0..nodes).filter(|n| shard_of(*n, shards) == shard).count();
            Ring { nodes, hops, counts: vec![0; local], last_at: vec![0; local] }
        }
    }

    impl ShardWorld for Ring {
        type Msg = u32; // remaining hops

        fn init(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>) {
            let (nodes, hops) = (sim.world.nodes, sim.world.hops);
            let (shard, shards) = (sim.shard(), sim.shards());
            for n in (0..nodes).filter(|n| shard_of(*n, shards) == shard) {
                let dst = (n + 1) % nodes;
                sim.send(n, dst, SimTime::ZERO + sim.lookahead(), hops);
            }
        }

        fn deliver(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>, m: Inbound<u32>) {
            let ix = local_ix(m.dst, sim.shards());
            sim.world.counts[ix] += 1;
            sim.world.last_at[ix] = m.at.as_nanos();
            if m.msg > 1 {
                let dst = (m.dst + 1) % sim.world.nodes;
                sim.send(m.dst, dst, m.at + sim.lookahead(), m.msg - 1);
            }
        }
    }

    fn run_ring(shards: usize, nodes: u32, hops: u32) -> (Vec<u64>, Vec<u64>, ShardOutcome<Ring>) {
        let l = Dur::from_micros(22);
        let worlds: Vec<Ring> =
            (0..shards).map(|s| Ring::new(s as u32, shards as u32, nodes, hops)).collect();
        let out = run_sharded(ShardCfg::new(shards, l, 0x5EED), worlds);
        // Flatten per-shard locals back to global node order.
        let mut counts = vec![0u64; nodes as usize];
        let mut last = vec![0u64; nodes as usize];
        for n in 0..nodes {
            let s = shard_of(n, shards as u32) as usize;
            let ix = local_ix(n, shards as u32);
            counts[n as usize] = out.worlds[s].counts[ix];
            last[n as usize] = out.worlds[s].last_at[ix];
        }
        (counts, last, out)
    }

    #[test]
    fn ring_runs_to_completion() {
        let (counts, _, out) = run_ring(1, 5, 7);
        assert_eq!(counts.iter().sum::<u64>(), 5 * 7);
        assert!(!out.hit_deadline);
        assert_eq!(out.events, out.sends_total, "one delivery event per send");
    }

    #[test]
    fn shard_counts_agree() {
        let base = run_ring(1, 6, 9);
        for shards in [2, 3, 4] {
            let got = run_ring(shards, 6, 9);
            assert_eq!(got.0, base.0, "counts diverge at shards={shards}");
            assert_eq!(got.1, base.1, "arrival times diverge at shards={shards}");
            assert_eq!(got.2.events, base.2.events);
            assert_eq!(got.2.sends_total, base.2.sends_total);
            assert_eq!(got.2.end_time, base.2.end_time);
        }
    }

    #[test]
    fn empty_shards_ride_along() {
        // More shards than nodes: shards 2..7 own nothing.
        let base = run_ring(1, 2, 4);
        let got = run_ring(7, 2, 4);
        assert_eq!(got.0, base.0);
        assert_eq!(got.2.events, base.2.events);
    }

    #[test]
    fn skip_ahead_spares_empty_epochs() {
        // Two messages a full simulated second apart: without skip-ahead
        // that is ~45k empty epochs at L = 22 µs; with it, one per message.
        struct Sparse {
            got: u64,
        }
        impl ShardWorld for Sparse {
            type Msg = ();
            fn init(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>) {
                if sim.shard() == 0 {
                    sim.send(0, 1, SimTime::ZERO + Dur::from_millis(1), ());
                    sim.send(0, 1, SimTime::ZERO + Dur::from_secs(1), ());
                }
            }
            fn deliver(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>, _m: Inbound<()>) {
                sim.world.got += 1;
            }
        }
        let out = run_sharded(
            ShardCfg::new(2, Dur::from_micros(22), 1),
            vec![Sparse { got: 0 }, Sparse { got: 0 }],
        );
        assert_eq!(out.worlds[0].got + out.worlds[1].got, 2);
        assert!(out.epochs <= 4, "expected skip-ahead, got {} epochs", out.epochs);
    }

    #[test]
    fn adaptive_window_straddles_the_grid() {
        // Two arrivals 0.2·L apart but straddling a grid boundary (0.9·L
        // and 1.1·L). The fixed grid would spend one epoch per cell; the
        // adaptive window [0.9·L, 1.9·L) executes both in a single round —
        // at every shard count.
        struct Pair {
            got: u64,
        }
        impl ShardWorld for Pair {
            type Msg = ();
            fn init(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>) {
                if sim.shard() == 0 {
                    // 0.9·L and 1.1·L for L = 22 µs.
                    sim.send(0, 1, SimTime::ZERO + Dur::from_nanos(19_800), ());
                    sim.send(0, 1, SimTime::ZERO + Dur::from_nanos(24_200), ());
                }
            }
            fn deliver(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>, _m: Inbound<()>) {
                sim.world.got += 1;
            }
        }
        for shards in [1usize, 2] {
            let worlds = (0..shards).map(|_| Pair { got: 0 }).collect();
            let out = run_sharded(ShardCfg::new(shards, Dur::from_micros(22), 3), worlds);
            let got: u64 = out.worlds.iter().map(|w| w.got).sum();
            assert_eq!(got, 2);
            assert_eq!(out.epochs, 1, "adaptive window should cover both arrivals");
        }
    }

    #[test]
    fn deadline_cuts_the_run() {
        let l = Dur::from_micros(22);
        let mut cfg = ShardCfg::new(1, l, 2);
        cfg.deadline = SimTime::ZERO + Dur::from_micros(50); // 2 hops of 22 µs fit
        let worlds = vec![Ring::new(0, 1, 2, 100)];
        let out = run_sharded(cfg, worlds);
        assert!(out.hit_deadline);
        // Two counter-rotating messages, two hop-times (22 µs, 44 µs) below
        // the 50 µs deadline: 2 deliveries per hop-time, 96 hops forgone.
        assert_eq!(out.worlds[0].counts.iter().sum::<u64>(), 4);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_rejected() {
        let _ = run_sharded(ShardCfg::new(1, Dur::ZERO, 0), vec![Ring::new(0, 1, 2, 1)]);
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn undercutting_the_lookahead_is_caught() {
        struct Cheat;
        impl ShardWorld for Cheat {
            type Msg = ();
            fn init(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>) {
                if sim.shard() == 0 {
                    sim.send(0, 1, SimTime::ZERO + Dur::from_micros(100), ());
                }
            }
            fn deliver(sim: &mut ShardSim<Self>, _ctx: &mut Ctx<ShardSim<Self>>, m: Inbound<()>) {
                // Arrival sooner than the lookahead: must panic.
                sim.send(m.dst, 0, m.at + Dur::from_nanos(1), ());
            }
        }
        let _ = run_sharded(ShardCfg::new(2, Dur::from_micros(22), 0), vec![Cheat, Cheat]);
    }
}
