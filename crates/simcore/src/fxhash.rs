//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The standard library's default `RandomState` is SipHash seeded per
//! process: robust against adversarial keys, but ~10× slower than needed
//! for the small integer tuples the scheduler and matching engine key by,
//! and its per-process seed makes map iteration order vary between runs.
//! Nothing in a closed simulation hashes attacker-controlled input, so we
//! use the multiply-xor scheme popularized by rustc (`FxHasher`): one
//! rotate, one xor, one multiply per word. The fixed seed also makes
//! iteration order a pure function of the insertion sequence, which is
//! one less way for nondeterminism to sneak into a reproducible run.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One rotate-xor-multiply per input word (rustc's hash function).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u32 as u64);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add(n as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_iteration_order_is_reproducible() {
        let mk = || {
            let mut m: FxHashMap<(u32, u16, i32), u32> = FxHashMap::default();
            for i in 0..100u32 {
                m.insert((i, i as u16, -(i as i32)), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn distinct_tuples_rarely_collide() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh = BuildHasherDefault::<FxHasher>::default();
        let mut seen = std::collections::HashSet::new();
        for c in 0..4u32 {
            for s in 0..64u16 {
                for t in 0..8i32 {
                    seen.insert(bh.hash_one((c, s, t)));
                }
            }
        }
        // 2048 keys; a sprinkle of collisions is fine, a collapse is not.
        assert!(seen.len() > 2000, "only {} distinct hashes", seen.len());
    }
}
