//! Deterministic random-number plumbing.
//!
//! Every source of randomness in a simulation is derived from a single master
//! seed, so that a run is reproducible bit-for-bit from `(seed, config)`.
//! Components ask for a *stream* — a stable label hashed together with the
//! master seed — so adding a new consumer of randomness never perturbs the
//! draws seen by existing ones.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step; the standard way to expand one u64 seed into many.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent RNG for `(master_seed, stream)`.
///
/// The same `(seed, stream)` pair always yields the same generator; distinct
/// streams are statistically independent.
pub fn derive_rng(master_seed: u64, stream: u64) -> SmallRng {
    let mut s = master_seed ^ stream.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    let mut key = [0u8; 32];
    for chunk in key.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut s).to_le_bytes());
    }
    SmallRng::from_seed(key)
}

/// Hash a string label into a stream id, for readable call sites like
/// `derive_rng(seed, stream_id("link-loss"))`.
pub fn stream_id(label: &str) -> u64 {
    // FNV-1a, good enough for a handful of fixed labels.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0100_0000_01b3_u128 as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_draws() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 8);
        let same = (0..100).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = derive_rng(1, 7);
        let mut b = derive_rng(2, 7);
        let same = (0..100).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_ids_are_stable_and_distinct() {
        assert_eq!(stream_id("link-loss"), stream_id("link-loss"));
        assert_ne!(stream_id("link-loss"), stream_id("cookie"));
    }
}
