//! The discrete-event scheduler.
//!
//! [`Ctx<W>`] is the handle every event callback and every world-access
//! closure receives alongside `&mut W`. It provides the current simulated
//! time, timer scheduling/cancellation, process wakeups, and the master RNG.
//!
//! Determinism: events at equal timestamps fire in insertion order (a
//! monotonic sequence number breaks ties), and process wakeups drain FIFO.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::fxhash::FxHashSet;

use rand::rngs::SmallRng;

use crate::process::ProcId;
use crate::time::{Dur, SimTime};

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Ctx<W>) + Send>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Scheduler context: simulated clock, event queue, wake queue, RNG.
pub struct Ctx<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<W>>,
    /// Seqs still in `queue` (not yet fired or cancelled). Guards `cancel`
    /// so cancelling a fired timer cannot leave a tombstone behind.
    pending: FxHashSet<u64>,
    /// Tombstones for cancelled-but-not-yet-popped entries; every member
    /// is also in `queue`.
    cancelled: FxHashSet<u64>,
    wake_fifo: VecDeque<ProcId>,
    wake_pending: FxHashSet<ProcId>,
    /// `sleeping[p]` is true while process `p` is parked inside
    /// [`crate::ProcEnv::sleep`]. A wake delivered to a sleeping process is
    /// provably spurious — the sleep loop only re-checks a private `done`
    /// flag that nothing but its own timer can set, then parks again without
    /// touching the world — so the fast discipline drops such wakes instead
    /// of paying a resume/park round trip for them.
    sleeping: Vec<bool>,
    /// Reference discipline: disable wake suppression and the sleep fast
    /// path, reproducing the original one-resume-per-wake accounting. Used
    /// by `SIM_CHECK=1` shadow runs and the equivalence proptests.
    reference: bool,
    /// Runtime deadline, mirrored here so the sleep fast path never advances
    /// the clock past the point where the driver would abort the run.
    deadline: SimTime,
    wakes_suppressed: u64,
    sleep_fastpaths: u64,
    /// Master RNG for the simulation. Components that need reproducible
    /// independent streams should use [`crate::rng::derive_rng`] instead and
    /// keep their own generator; this one is for ad-hoc draws (e.g. link loss).
    pub rng: SmallRng,
    events_fired: u64,
}

impl<W> Ctx<W> {
    pub(crate) fn new(rng: SmallRng) -> Self {
        Ctx {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            pending: FxHashSet::default(),
            cancelled: FxHashSet::default(),
            wake_fifo: VecDeque::new(),
            wake_pending: FxHashSet::default(),
            sleeping: Vec::new(),
            reference: false,
            deadline: SimTime::MAX,
            wakes_suppressed: 0,
            sleep_fastpaths: 0,
            rng,
            events_fired: 0,
        }
    }

    pub(crate) fn set_reference(&mut self, on: bool) {
        self.reference = on;
    }

    pub(crate) fn set_deadline(&mut self, deadline: SimTime) {
        self.deadline = deadline;
    }

    /// Wakes that never became a driver↔process round trip: suppressed
    /// spurious wakes plus sleeps satisfied by the inline fast path.
    #[inline]
    pub fn wakes_coalesced(&self) -> u64 {
        self.wakes_suppressed + self.sleep_fastpaths
    }

    /// Spurious wakes dropped because the target was in a charge sleep.
    #[inline]
    pub fn wakes_suppressed(&self) -> u64 {
        self.wakes_suppressed
    }

    /// Sleeps satisfied by an inline clock advance, no park at all.
    #[inline]
    pub fn sleep_fastpaths(&self) -> u64 {
        self.sleep_fastpaths
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far (diagnostic).
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Schedule `f` to run at absolute time `at` (clamped to be >= now).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry { at, seq, f: Box::new(f) });
        self.pending.insert(seq);
        TimerId(seq)
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: Dur,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancel a previously scheduled timer. Cancelling an already-fired or
    /// already-cancelled timer is a no-op (and leaves no tombstone behind).
    pub fn cancel(&mut self, id: TimerId) {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            self.maybe_compact();
        }
    }

    /// Rebuild the heap without tombstoned entries once they outnumber the
    /// live ones; keeps long timer-churn runs (every SACK re-arms a timer)
    /// from dragging an ever-growing heap through every push/pop.
    fn maybe_compact(&mut self) {
        if self.cancelled.len() <= 32 || self.cancelled.len() * 2 <= self.queue.len() {
            return;
        }
        let old = std::mem::take(&mut self.queue);
        let cancelled = &mut self.cancelled;
        let kept: Vec<Entry<W>> = old.into_iter().filter(|e| !cancelled.remove(&e.seq)).collect();
        // Heapify is O(n); pop order is unchanged because entry order is
        // total on (time, seq) regardless of internal heap layout.
        self.queue = BinaryHeap::from(kept);
        debug_assert!(self.cancelled.is_empty(), "tombstone for entry not in queue");
    }

    /// Mark a process runnable. Wakeups are drained FIFO by the driver before
    /// the next timed event fires. Duplicate wakes of an already-pending
    /// process coalesce; wakes aimed at a process parked in a charge sleep
    /// are provably spurious (see [`Ctx::sleeping`]) and are dropped unless
    /// the reference discipline is active.
    pub fn wake(&mut self, p: ProcId) {
        if !self.reference && self.sleeping.get(p.0).copied().unwrap_or(false) {
            self.wakes_suppressed += 1;
            return;
        }
        if self.wake_pending.insert(p) {
            self.wake_fifo.push_back(p);
        }
    }

    /// Wake every process in a slice (convenience for waiter lists).
    pub fn wake_all(&mut self, ps: &[ProcId]) {
        for &p in ps {
            self.wake(p);
        }
    }

    /// Mark `p` as parked inside `ProcEnv::sleep` so incoming wakes can be
    /// suppressed. Must be bracketed by [`Ctx::finish_sleep_and_wake`].
    pub(crate) fn begin_sleep(&mut self, p: ProcId) {
        if self.sleeping.len() <= p.0 {
            self.sleeping.resize(p.0 + 1, false);
        }
        debug_assert!(!self.sleeping[p.0], "nested sleep for one process");
        self.sleeping[p.0] = true;
    }

    /// Clear `p`'s sleeping mark and enqueue its (now genuine) timer wake.
    pub(crate) fn finish_sleep_and_wake(&mut self, p: ProcId) {
        debug_assert!(self.sleeping.get(p.0).copied().unwrap_or(false));
        self.sleeping[p.0] = false;
        self.wake(p);
    }

    /// CPU-charge batching fast path: try to satisfy a `sleep(d)` by
    /// advancing the clock inline, with no timer, no park, and no
    /// driver↔process round trip. Legal only when the advance is invisible:
    /// no process is pending a wake (they would have run first), no queued
    /// event fires at or before the target time (`<=` because an
    /// already-queued event at exactly `now + d` carries a smaller seq than
    /// the sleep timer would get, so the reference discipline fires it
    /// first), and the target does not cross the run deadline. Counts the
    /// skipped sleep timer as one fired event so `events_fired` stays
    /// identical to the reference discipline.
    pub(crate) fn try_advance_sleep(&mut self, d: Dur) -> bool {
        if self.reference || !self.wake_fifo.is_empty() {
            return false;
        }
        let to = self.now + d;
        if to > self.deadline {
            return false;
        }
        if let Some(t) = self.next_event_time() {
            if t <= to {
                return false;
            }
        }
        self.now = to;
        self.events_fired += 1;
        self.sleep_fastpaths += 1;
        true
    }

    /// Drain the pending wake batch into `out` (cleared first). Reuses the
    /// driver's buffer so the per-batch `Vec` allocation of the old
    /// `take_wakes` is gone. Batch semantics are load-bearing: the pending
    /// set is cleared wholesale, so a wake issued *during* the batch — even
    /// to a process earlier in it — lands in the next batch.
    pub(crate) fn take_wakes_into(&mut self, out: &mut Vec<ProcId>) {
        out.clear();
        out.extend(self.wake_fifo.drain(..));
        self.wake_pending.clear();
    }

    #[cfg(test)]
    pub(crate) fn take_wakes(&mut self) -> Vec<ProcId> {
        let mut v = Vec::new();
        self.take_wakes_into(&mut v);
        v
    }

    pub(crate) fn has_wakes(&self) -> bool {
        !self.wake_fifo.is_empty()
    }

    /// Pop the next non-cancelled event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub(crate) fn pop_event(&mut self) -> Option<EventFn<W>> {
        while let Some(e) = self.queue.pop() {
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            self.pending.remove(&e.seq);
            debug_assert!(e.at >= self.now, "time went backwards");
            self.now = e.at;
            self.events_fired += 1;
            return Some(e.f);
        }
        None
    }

    /// Timestamp of the next pending (possibly cancelled) event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    fn ctx() -> Ctx<Vec<u32>> {
        Ctx::new(derive_rng(0, 0))
    }

    fn drain(world: &mut Vec<u32>, ctx: &mut Ctx<Vec<u32>>) {
        while let Some(f) = ctx.pop_event() {
            f(world, ctx);
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        c.schedule_in(Dur::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(c.now(), SimTime::ZERO + Dur::from_secs(3));
    }

    #[test]
    fn equal_timestamps_fire_in_insertion_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        for i in 0..10 {
            c.schedule_in(Dur::from_secs(1), move |w: &mut Vec<u32>, _| w.push(i));
        }
        drain(&mut w, &mut c);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut c = ctx();
        let mut w = Vec::new();
        let id = c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(99));
        c.schedule_in(Dur::from_secs(2), |w: &mut Vec<u32>, _| w.push(1));
        c.cancel(id);
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, c: &mut Ctx<Vec<u32>>| {
            w.push(1);
            c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(2));
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(c.now(), SimTime::ZERO + Dur::from_secs(2));
    }

    #[test]
    fn schedule_at_past_clamps_to_now() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(5), |w: &mut Vec<u32>, c: &mut Ctx<Vec<u32>>| {
            w.push(1);
            // Try to schedule in the past; must fire at `now`, not panic.
            c.schedule_at(SimTime::ZERO, |w: &mut Vec<u32>, _| w.push(2));
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn cancel_after_fire_leaves_no_tombstone() {
        let mut c = ctx();
        let mut w = Vec::new();
        let id = c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1]);
        c.cancel(id); // already fired: must be a no-op
        c.cancel(id);
        assert!(c.cancelled.is_empty(), "fired-timer cancel must not tombstone");
        assert!(c.pending.is_empty());
    }

    #[test]
    fn tombstones_are_bounded_under_churn() {
        let mut c = ctx();
        // Re-arm/cancel churn: every timer is cancelled before firing, as
        // the SCTP T3 and SACK timers do on every ack.
        for i in 0..10_000u64 {
            let id = c.schedule_in(Dur::from_secs(1 + i), |_: &mut Vec<u32>, _| {});
            c.cancel(id);
        }
        assert!(
            c.cancelled.len() <= c.queue.len().max(64),
            "tombstones ({}) must not dominate the live heap ({})",
            c.cancelled.len(),
            c.queue.len()
        );
        let mut w = Vec::new();
        drain(&mut w, &mut c);
        assert!(w.is_empty());
        assert!(c.cancelled.is_empty() && c.pending.is_empty());
    }

    #[test]
    fn compaction_preserves_fire_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        let mut keep = Vec::new();
        for i in 0..200u32 {
            let id = c.schedule_in(Dur::from_secs(i as u64 + 1), move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
            if i % 3 == 0 {
                keep.push(i);
            } else {
                c.cancel(id); // forces at least one compaction
            }
        }
        drain(&mut w, &mut c);
        assert_eq!(w, keep, "survivors fire in time order after compaction");
    }

    #[test]
    fn duplicate_wakes_coalesce() {
        let mut c = ctx();
        c.wake(ProcId(3));
        c.wake(ProcId(3));
        c.wake(ProcId(1));
        assert_eq!(c.take_wakes(), vec![ProcId(3), ProcId(1)]);
        assert!(c.take_wakes().is_empty());
    }
}
