//! The discrete-event scheduler.
//!
//! [`Ctx<W>`] is the handle every event callback and every world-access
//! closure receives alongside `&mut W`. It provides the current simulated
//! time, timer scheduling/cancellation, process wakeups, and the master RNG.
//!
//! Determinism: events at equal timestamps fire in insertion order (a
//! monotonic sequence number breaks ties), and process wakeups drain FIFO.
//!
//! # Queue structure
//!
//! The queue front is a hashed timer wheel: `WHEEL_SLOTS` buckets of
//! `WHEEL_GRAIN_NS` nanoseconds each, covering a `WHEEL_HORIZON_NS`
//! look-ahead window. Timers inside the horizon — packet deliveries, CPU
//! charges, delayed ACKs at LAN scale — insert in O(1); timers beyond it
//! (RTOs, heartbeats, watchdogs) fall back to a binary heap of small `Copy`
//! keys. Because every wheel entry lives within one horizon of `now`,
//! walking the occupancy bitmap circularly from `now`'s bucket visits
//! buckets in time order, and the earliest event is the (time, seq)-minimum
//! of the first non-empty bucket versus the heap top.
//!
//! Event payloads live in a slab of reusable slots, with the closure stored
//! *inline* in the slot when it fits (`INLINE_WORDS` words) — the
//! dominant short-horizon timers allocate nothing at all; oversized
//! closures degrade to one boxed allocation. [`TimerId`] is a
//! (slot, generation) pair, so `cancel` is O(1): it drops the closure,
//! frees the slot, and bumps the generation, leaving a stale `Copy` key in
//! the wheel or heap that is discarded when next encountered (heap
//! tombstones are additionally bounded by compaction).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};

use crate::fxhash::FxHashSet;

use rand::rngs::SmallRng;

use crate::process::ProcId;
use crate::time::{Dur, SimTime};

/// Identifies a scheduled timer so it can be cancelled. Packs the slab slot
/// index and its generation; cancelling a fired or already-cancelled timer
/// is a generation mismatch and a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    fn pack(idx: u32, gen: u32) -> TimerId {
        TimerId(((idx as u64) << 32) | gen as u64)
    }

    fn unpack(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }
}

// ---------------------------------------------------------------------------
// Inline event storage
// ---------------------------------------------------------------------------

/// Words of inline closure storage per slab slot. Sized so a packet-delivery
/// closure (which captures the packet by value) fits; larger captures fall
/// back to one boxed allocation.
const INLINE_WORDS: usize = 18;

type Buf = [MaybeUninit<usize>; INLINE_WORDS];

type BoxedFn<W> = Box<dyn FnOnce(&mut W, &mut Ctx<W>) + Send>;

/// A type-erased `FnOnce(&mut W, &mut Ctx<W>)` stored inline when it fits.
///
/// Invariant: `buf` holds an initialized value of the closure type the two
/// function pointers were instantiated for. `invoke` consumes it; `Drop`
/// runs its destructor if it was never invoked (cancelled timers).
struct InlineEvent<W> {
    call: unsafe fn(*mut Buf, &mut W, &mut Ctx<W>),
    drop_in_place: unsafe fn(*mut Buf),
    buf: Buf,
}

unsafe fn call_thunk<W, F: FnOnce(&mut W, &mut Ctx<W>)>(buf: *mut Buf, w: &mut W, ctx: &mut Ctx<W>) {
    // Safety: caller guarantees `buf` holds an initialized `F`; the value is
    // moved out here and must not be dropped again.
    let f: F = unsafe { (buf as *mut F).read() };
    f(w, ctx)
}

unsafe fn drop_thunk<F>(buf: *mut Buf) {
    // Safety: caller guarantees `buf` holds an initialized `F`.
    unsafe { std::ptr::drop_in_place(buf as *mut F) }
}

impl<W> InlineEvent<W> {
    fn pack<F: FnOnce(&mut W, &mut Ctx<W>) + Send + 'static>(f: F) -> InlineEvent<W> {
        // Safety: an array of `MaybeUninit` needs no initialization.
        let mut buf: Buf = unsafe { MaybeUninit::uninit().assume_init() };
        if size_of::<F>() <= size_of::<Buf>() && align_of::<F>() <= align_of::<Buf>() {
            // Safety: size/align checked; `buf` owns the value from here on.
            unsafe { (buf.as_mut_ptr() as *mut F).write(f) };
            InlineEvent { call: call_thunk::<W, F>, drop_in_place: drop_thunk::<F>, buf }
        } else {
            let b: BoxedFn<W> = Box::new(f);
            debug_assert!(size_of::<BoxedFn<W>>() <= size_of::<Buf>());
            // Safety: a fat Box pointer always fits the buffer.
            unsafe { (buf.as_mut_ptr() as *mut BoxedFn<W>).write(b) };
            InlineEvent {
                call: call_thunk::<W, BoxedFn<W>>,
                drop_in_place: drop_thunk::<BoxedFn<W>>,
                buf,
            }
        }
    }

    fn invoke(self, w: &mut W, ctx: &mut Ctx<W>) {
        let mut this = ManuallyDrop::new(self);
        // Safety: the invariant says `buf` is initialized for `call`'s type;
        // `ManuallyDrop` prevents the destructor from double-dropping the
        // value `call` moves out.
        unsafe { (this.call)(&mut this.buf, w, ctx) }
    }
}

impl<W> Drop for InlineEvent<W> {
    fn drop(&mut self) {
        // Safety: only reached when `invoke` never ran, so `buf` still holds
        // the initialized closure.
        unsafe { (self.drop_in_place)(&mut self.buf) }
    }
}

/// An event popped from the queue, ready to run exactly once.
pub(crate) struct FiredEvent<W>(InlineEvent<W>);

impl<W> FiredEvent<W> {
    pub(crate) fn call(self, w: &mut W, ctx: &mut Ctx<W>) {
        self.0.invoke(w, ctx)
    }
}

/// Result of a bound-respecting pop: one scan answers all three questions
/// the driver loop asks per event (anything queued? due before the
/// deadline? then pop it).
pub(crate) enum Popped<W> {
    /// The queue minimum, removed; the clock has advanced to it.
    Fired(FiredEvent<W>),
    /// The queue minimum lies past the bound; nothing was removed.
    PastBound,
    /// No live events queued.
    Empty,
}

// ---------------------------------------------------------------------------
// Wheel + heap + slab
// ---------------------------------------------------------------------------

/// Wheel bucket granularity (2^13 ns ≈ 8.2 µs — a handful of buckets per
/// LAN packet time).
const WHEEL_SHIFT: u32 = 13;
/// Number of wheel buckets (one horizon = one full revolution).
const WHEEL_SLOTS: usize = 4096;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;
/// Look-ahead the wheel covers (≈ 33.6 ms); anything further heads to the
/// heap. Public so the equivalence proptests can aim timers at both sides
/// of the boundary.
pub const WHEEL_HORIZON_NS: u64 = (WHEEL_SLOTS as u64) << WHEEL_SHIFT;
/// Exposed for the scheduler equivalence proptests: granularity in ns.
pub const WHEEL_GRAIN_NS: u64 = 1 << WHEEL_SHIFT;

/// Second-level wheel granularity (2^21 ns ≈ 2.1 ms). Coarse timers — RTO
/// (hundreds of ms), heartbeats, farm compute sleeps — land here instead
/// of falling to the heap.
const WHEEL2_SHIFT: u32 = 21;
/// Look-ahead of the second-level wheel (≈ 8.6 s). Only timers beyond
/// *this* still fall to the heap.
pub const WHEEL2_HORIZON_NS: u64 = (WHEEL_SLOTS as u64) << WHEEL2_SHIFT;
/// Second-level granularity in ns, exposed for the equivalence proptests.
pub const WHEEL2_GRAIN_NS: u64 = 1 << WHEEL2_SHIFT;

#[inline]
fn bucket_of(at: SimTime) -> usize {
    ((at.as_nanos() >> WHEEL_SHIFT) as usize) & (WHEEL_SLOTS - 1)
}

#[inline]
fn bucket2_of(at: SimTime) -> usize {
    ((at.as_nanos() >> WHEEL2_SHIFT) as usize) & (WHEEL_SLOTS - 1)
}

/// Ordering key of one queued event. `Copy`, so stale (cancelled) keys cost
/// nothing to carry and nothing to skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    at: SimTime,
    seq: u64,
    idx: u32,
    gen: u32,
}

/// One slab slot: generation tag plus the (possibly inline) event payload.
struct Slot<W> {
    gen: u32,
    occupied: bool,
    /// Whether the live key referencing this slot sits in the heap (false:
    /// wheel) — lets `cancel` charge the right tombstone counter.
    in_heap: bool,
    /// The (time, seq) the live key was inserted under, so
    /// [`Ctx::cancel_counted`] can reconstruct the ghost key without
    /// touching the wheel. Valid while `occupied`.
    at: SimTime,
    seq: u64,
    ev: MaybeUninit<InlineEvent<W>>,
}

/// Scheduler context: simulated clock, event queue, wake queue, RNG.
pub struct Ctx<W> {
    now: SimTime,
    seq: u64,
    slots: Vec<Slot<W>>,
    free: Vec<u32>,
    wheel: Box<[Vec<Key>; WHEEL_SLOTS]>,
    /// Occupancy bitmap over `wheel` (bit set ⇔ bucket non-empty).
    occ: [u64; WHEEL_WORDS],
    /// Entries currently in the wheel, stale keys included.
    wheel_len: usize,
    /// Second-level wheel: same slot count at a 256× coarser grain, so
    /// multi-second timers stay O(1) instead of falling to the heap.
    wheel2: Box<[Vec<Key>; WHEEL_SLOTS]>,
    /// Occupancy bitmap over `wheel2`.
    occ2: [u64; WHEEL_WORDS],
    /// Entries currently in the second-level wheel, stale keys included.
    wheel2_len: usize,
    heap: BinaryHeap<Reverse<Key>>,
    /// Stale keys currently in the heap; bounded by compaction.
    heap_dead: usize,
    /// Ghost keys of batch-cancelled timers ([`Ctx::cancel_counted`] /
    /// [`Ctx::reschedule_in`]). Under the abandon-and-check discipline each
    /// of these would still be a queued no-op event that fires, counts in
    /// `events_fired`, and gates the inline fast paths; the ghost heap
    /// reproduces all three for the price of a 16-byte key, so figure
    /// outputs and event counts stay bit-identical while the slab slot and
    /// the closure dispatch are reclaimed immediately.
    ghosts: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// Conservative lower bound on every queued key: `low <= (at, seq)` for
    /// each live entry in the wheel or heap. Kept valid for free — inserts
    /// `min` it down, pops tighten it to the popped key (the queue minimum,
    /// so no smaller key remains), cancels only remove keys — and refreshed
    /// by a full scan only when a fast-path check cannot be decided from the
    /// bound alone. Lets `try_advance_to`/`try_advance_sleep` skip the scan
    /// on the common quiescent path.
    low: (SimTime, u64),
    wake_fifo: VecDeque<ProcId>,
    wake_pending: FxHashSet<ProcId>,
    /// `sleeping[p]` is true while process `p` is parked inside
    /// [`crate::ProcEnv::sleep`]. A wake delivered to a sleeping process is
    /// provably spurious — the sleep loop only re-checks a private `done`
    /// flag that nothing but its own timer can set, then parks again without
    /// touching the world — so the fast discipline drops such wakes instead
    /// of paying a resume/park round trip for them.
    sleeping: Vec<bool>,
    /// Reference discipline: disable wake suppression, the sleep fast path,
    /// and packet-train fusion, reproducing the original one-event-per-packet
    /// accounting. Used by `SIM_CHECK=1` shadow runs and the equivalence
    /// proptests.
    reference: bool,
    /// Runtime deadline, mirrored here so the inline fast paths never advance
    /// the clock past the point where the driver would abort the run.
    deadline: SimTime,
    wakes_suppressed: u64,
    sleep_fastpaths: u64,
    wheel_hits: u64,
    heap_falls: u64,
    bursts: u64,
    fused_pkts: u64,
    /// Abandoned-timer fires elided by the ghost heap (each still counted
    /// in `events_fired`).
    ghost_fires: u64,
    /// Master RNG for the simulation. Components that need reproducible
    /// independent streams should use [`crate::rng::derive_rng`] instead and
    /// keep their own generator; this one is for ad-hoc draws (e.g. link loss).
    pub rng: SmallRng,
    events_fired: u64,
    /// Flight recorder, if tracing is enabled for this run. Hooks must be
    /// read-only with respect to simulation state: no RNG draws, no event
    /// scheduling — outputs stay bit-identical with tracing on or off.
    tracer: Option<trace::Tracer>,
}

impl<W> Ctx<W> {
    pub(crate) fn new(rng: SmallRng) -> Self {
        Ctx {
            now: SimTime::ZERO,
            seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            wheel: Box::new(std::array::from_fn(|_| Vec::new())),
            occ: [0; WHEEL_WORDS],
            wheel_len: 0,
            wheel2: Box::new(std::array::from_fn(|_| Vec::new())),
            occ2: [0; WHEEL_WORDS],
            wheel2_len: 0,
            heap: BinaryHeap::new(),
            heap_dead: 0,
            ghosts: BinaryHeap::new(),
            low: (SimTime::MAX, u64::MAX),
            wake_fifo: VecDeque::new(),
            wake_pending: FxHashSet::default(),
            sleeping: Vec::new(),
            reference: false,
            deadline: SimTime::MAX,
            wakes_suppressed: 0,
            sleep_fastpaths: 0,
            wheel_hits: 0,
            heap_falls: 0,
            bursts: 0,
            fused_pkts: 0,
            ghost_fires: 0,
            rng,
            events_fired: 0,
            tracer: None,
        }
    }

    pub(crate) fn set_tracer(&mut self, tracer: Option<trace::Tracer>) {
        self.tracer = tracer;
    }

    /// Build a standalone context for an external driver — the real-socket
    /// reactor, which owns its own loop instead of a [`crate::Runtime`].
    /// The caller advances virtual time explicitly with [`Ctx::run_due`];
    /// nothing here spawns processes or parks threads.
    pub fn standalone(rng: SmallRng) -> Self {
        Ctx::new(rng)
    }

    /// Install (or remove) the flight recorder on a standalone context.
    /// Drivers built on [`crate::Runtime`] use `Runtime::set_tracer`
    /// instead; this is the seam for external reactors.
    pub fn install_tracer(&mut self, tracer: Option<trace::Tracer>) {
        self.set_tracer(tracer);
    }

    /// Fire every queued event due at or before `bound` (in (time, seq)
    /// order, advancing the clock to each event's timestamp), then advance
    /// the clock to `bound` itself. Returns the number of events fired.
    ///
    /// This is the timer pump of the real-socket reactor: `bound` is the
    /// wall clock translated to virtual nanoseconds, so engine timers (RTO,
    /// delayed SACK, heartbeats) fire when real time passes them, and
    /// everything scheduled afterwards is relative to wall time. Events
    /// fired here may schedule further events; those are honored within the
    /// same call when they fall inside `bound`.
    pub fn run_due(&mut self, w: &mut W, bound: SimTime) -> u64 {
        let mut fired = 0u64;
        loop {
            match self.pop_next(bound) {
                Popped::Fired(ev) => {
                    ev.call(w, self);
                    fired += 1;
                }
                Popped::PastBound | Popped::Empty => break,
            }
        }
        if bound > self.now {
            self.now = bound;
        }
        fired
    }

    /// Is the flight recorder on? Hooks check this before building events
    /// so tracing costs one branch when off.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The installed flight recorder, for hooks that need more than a plain
    /// emit (frame snaplen, HOL-state tracking).
    #[inline]
    pub fn tracer(&self) -> Option<&trace::Tracer> {
        self.tracer.as_ref()
    }

    /// Record one trace event stamped with the current virtual clock.
    /// No-op when tracing is off.
    #[inline]
    pub fn trace_emit(&self, ev: trace::Event) {
        if let Some(t) = &self.tracer {
            t.emit(self.now.as_nanos(), ev);
        }
    }

    pub(crate) fn set_reference(&mut self, on: bool) {
        self.reference = on;
    }

    pub(crate) fn set_deadline(&mut self, deadline: SimTime) {
        self.deadline = deadline;
    }

    /// Reference discipline active (shadow-verification runs)? The burst
    /// path consults this to degrade to per-packet events.
    #[inline]
    pub fn is_reference(&self) -> bool {
        self.reference
    }

    /// Wakes that never became a driver↔process round trip: suppressed
    /// spurious wakes plus sleeps satisfied by the inline fast path.
    #[inline]
    pub fn wakes_coalesced(&self) -> u64 {
        self.wakes_suppressed + self.sleep_fastpaths
    }

    /// Spurious wakes dropped because the target was in a charge sleep.
    #[inline]
    pub fn wakes_suppressed(&self) -> u64 {
        self.wakes_suppressed
    }

    /// Sleeps satisfied by an inline clock advance, no park at all.
    #[inline]
    pub fn sleep_fastpaths(&self) -> u64 {
        self.sleep_fastpaths
    }

    /// Timers that landed in the wheel (short horizon, O(1) bucket insert).
    #[inline]
    pub fn wheel_hits(&self) -> u64 {
        self.wheel_hits
    }

    /// Timers beyond the wheel horizon that fell back to the heap.
    #[inline]
    pub fn heap_falls(&self) -> u64 {
        self.heap_falls
    }

    /// Packet trains emitted through the burst path.
    #[inline]
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Packets carried inside those trains (each still counts as one fired
    /// event; see [`Ctx::try_advance_to`]).
    #[inline]
    pub fn fused_pkts(&self) -> u64 {
        self.fused_pkts
    }

    /// Record one emitted train of `pkts` fused packets.
    #[inline]
    pub fn note_burst(&mut self, pkts: u64) {
        self.bursts += 1;
        self.fused_pkts += pkts;
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far (diagnostic).
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// The sequence number the next scheduled event will draw — what
    /// [`Ctx::schedule_train_at`] is about to return, for closures that must
    /// capture their own base seq.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    fn alloc_slot(&mut self, ev: InlineEvent<W>, in_heap: bool) -> (u32, u32) {
        if let Some(idx) = self.free.pop() {
            let s = &mut self.slots[idx as usize];
            debug_assert!(!s.occupied, "freelist slot still occupied");
            s.occupied = true;
            s.in_heap = in_heap;
            s.ev.write(ev);
            (idx, s.gen)
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                occupied: true,
                in_heap,
                at: SimTime::ZERO,
                seq: 0,
                ev: MaybeUninit::new(ev),
            });
            (idx, 0)
        }
    }

    /// Release a slot whose payload has been moved out or dropped.
    fn free_slot(&mut self, idx: u32) {
        let s = &mut self.slots[idx as usize];
        debug_assert!(s.occupied);
        s.occupied = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(idx);
    }

    /// Insert an event at (`at`, `seq`): wheel when inside the horizon, heap
    /// otherwise. `at` must already be clamped to `>= now`.
    fn insert(&mut self, at: SimTime, seq: u64, ev: InlineEvent<W>) -> TimerId {
        debug_assert!(at >= self.now);
        // Gate on *bucket* distance, not nanosecond distance: from a
        // non-grain-aligned `now`, a timer with `at - now` just under the
        // horizon can still lie a full revolution of buckets ahead, which
        // would wrap into the scan-start bucket and fire before earlier
        // timers in later buckets. Bucket distance < WHEEL_SLOTS makes a
        // wrapped-to-start entry unrepresentable.
        let near = (at.as_nanos() >> WHEEL_SHIFT) - (self.now.as_nanos() >> WHEEL_SHIFT)
            < WHEEL_SLOTS as u64;
        // Same gate at the coarse grain: RTOs, heartbeats and compute sleeps
        // (milliseconds to seconds out) land in the second wheel instead of
        // the heap; only timers past ~8.6 s still fall.
        let far = !near
            && (at.as_nanos() >> WHEEL2_SHIFT) - (self.now.as_nanos() >> WHEEL2_SHIFT)
                < WHEEL_SLOTS as u64;
        let (idx, gen) = self.alloc_slot(ev, !(near || far));
        {
            let s = &mut self.slots[idx as usize];
            s.at = at;
            s.seq = seq;
        }
        let key = Key { at, seq, idx, gen };
        if (at, seq) < self.low {
            self.low = (at, seq);
        }
        if near {
            let b = bucket_of(at);
            if self.wheel[b].is_empty() {
                self.occ[b / 64] |= 1 << (b % 64);
            }
            self.wheel[b].push(key);
            self.wheel_len += 1;
            self.wheel_hits += 1;
        } else if far {
            let b = bucket2_of(at);
            if self.wheel2[b].is_empty() {
                self.occ2[b / 64] |= 1 << (b % 64);
            }
            self.wheel2[b].push(key);
            self.wheel2_len += 1;
            self.wheel_hits += 1;
        } else {
            self.heap.push(Reverse(key));
            self.heap_falls += 1;
        }
        TimerId::pack(idx, gen)
    }

    /// Schedule `f` to run at absolute time `at` (clamped to be >= now).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.insert(at, seq, InlineEvent::pack(f))
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: Dur,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule the head event of a packet train and reserve `extra`
    /// additional sequence numbers for its follow-on deliveries. Returns the
    /// base sequence number: the train's K surviving packets own seqs
    /// `base..base + K` (K = extra + 1), exactly the seqs K per-packet
    /// `schedule_at` calls would have drawn — so every equal-timestamp tie
    /// against foreign events resolves identically under both disciplines.
    /// Continuations claim their reserved seq via [`Ctx::schedule_at_seq`].
    pub fn schedule_train_at(
        &mut self,
        at: SimTime,
        extra: u64,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> u64 {
        let at = at.max(self.now);
        let base = self.seq;
        self.seq += 1 + extra;
        self.insert(at, base, InlineEvent::pack(f));
        base
    }

    /// Schedule `f` at `at` with an explicitly reserved sequence number
    /// (from [`Ctx::schedule_train_at`]); used when a train falls back to a
    /// real event mid-delivery, so the continuation keeps the fire-order
    /// position its packet would have had under per-packet scheduling.
    pub fn schedule_at_seq(
        &mut self,
        at: SimTime,
        seq: u64,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        debug_assert!(seq < self.seq, "seq {seq} was never reserved");
        debug_assert!(at >= self.now);
        let at = at.max(self.now);
        self.insert(at, seq, InlineEvent::pack(f))
    }

    /// Cancel a previously scheduled timer. Cancelling an already-fired or
    /// already-cancelled timer is a generation mismatch and a no-op. O(1):
    /// the closure is dropped and the slot freed immediately; the stale key
    /// left in the wheel/heap is skipped (and, in the heap, bounded by
    /// compaction).
    pub fn cancel(&mut self, id: TimerId) {
        let (idx, gen) = id.unpack();
        let Some(s) = self.slots.get_mut(idx as usize) else { return };
        if !s.occupied || s.gen != gen {
            return;
        }
        // Safety: occupied ⇒ initialized; moving it out and dropping runs
        // the closure's destructor exactly once.
        let ev = unsafe { s.ev.assume_init_read() };
        drop(ev);
        if s.in_heap {
            self.heap_dead += 1;
        }
        self.free_slot(idx);
        self.maybe_compact_heap();
    }

    /// Cancel a timer while preserving the event-count and fire-order
    /// accounting an *abandoned* timer would have had.
    ///
    /// The transport engines historically rearmed timers by bumping a
    /// generation counter and letting the stale timer fire as a checked
    /// no-op: the dead event still occupied a slab slot, still gated the
    /// inline fast paths, and still counted in `events_fired` when popped.
    /// `cancel_counted` frees the closure and the slot *now* but pushes the
    /// timer's (time, seq) key onto the ghost heap, where `Ctx::pop_next`
    /// drains it with identical accounting — so a converted call site
    /// changes no simulation output bit, only the work done per event.
    ///
    /// Returns `true` if the timer was live (a ghost was queued); a fired or
    /// already-cancelled id is a generation mismatch and a no-op, exactly
    /// like [`Ctx::cancel`].
    pub fn cancel_counted(&mut self, id: TimerId) -> bool {
        let (idx, gen) = id.unpack();
        let Some(s) = self.slots.get_mut(idx as usize) else { return false };
        if !s.occupied || s.gen != gen {
            return false;
        }
        let ghost = (s.at, s.seq);
        // Safety: occupied ⇒ initialized; moving it out and dropping runs
        // the closure's destructor exactly once.
        let ev = unsafe { s.ev.assume_init_read() };
        drop(ev);
        if s.in_heap {
            self.heap_dead += 1;
        }
        self.free_slot(idx);
        self.maybe_compact_heap();
        self.ghosts.push(Reverse(ghost));
        true
    }

    /// Batched cancel + rearm: retire `id` (ghost-counted, see
    /// [`Ctx::cancel_counted`]) and schedule `f` after `delay` in one call.
    /// Draws exactly one fresh sequence number — the same draw the
    /// abandon-and-reschedule pattern made — so every tie against foreign
    /// events resolves identically. This is the per-SACK RTO rearm path.
    pub fn reschedule_in(
        &mut self,
        id: Option<TimerId>,
        delay: Dur,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        if let Some(id) = id {
            self.cancel_counted(id);
        }
        self.schedule_in(delay, f)
    }

    /// Abandoned-timer fires elided by the ghost heap so far (diagnostic;
    /// each was still counted in [`Ctx::events_fired`]).
    #[inline]
    pub fn ghost_fires(&self) -> u64 {
        self.ghost_fires
    }

    /// Rebuild the heap without stale keys once they outnumber the live
    /// ones; keeps long timer-churn runs (every SACK re-arms a timer) from
    /// dragging an ever-growing heap through every push/pop. Wheel buckets
    /// need no analogue: every bucket is swept within one horizon
    /// revolution as the pop scan passes it.
    fn maybe_compact_heap(&mut self) {
        if self.heap_dead <= 32 || self.heap_dead * 2 <= self.heap.len() {
            return;
        }
        let old = std::mem::take(&mut self.heap);
        let slots = &self.slots;
        // Heapify is O(n); pop order is unchanged because key order is
        // total on (time, seq) regardless of internal heap layout.
        self.heap = old
            .into_iter()
            .filter(|Reverse(k)| slots[k.idx as usize].gen == k.gen)
            .collect();
        self.heap_dead = 0;
    }

    /// Mark a process runnable. Wakeups are drained FIFO by the driver before
    /// the next timed event fires. Duplicate wakes of an already-pending
    /// process coalesce; wakes aimed at a process parked in a charge sleep
    /// are provably spurious (see the `sleeping` bitmap) and are dropped unless
    /// the reference discipline is active.
    pub fn wake(&mut self, p: ProcId) {
        if !self.reference && self.sleeping.get(p.0).copied().unwrap_or(false) {
            self.wakes_suppressed += 1;
            return;
        }
        if self.wake_pending.insert(p) {
            self.wake_fifo.push_back(p);
        }
    }

    /// Wake every process in a slice (convenience for waiter lists).
    pub fn wake_all(&mut self, ps: &[ProcId]) {
        for &p in ps {
            self.wake(p);
        }
    }

    /// Mark `p` as parked inside `ProcEnv::sleep` so incoming wakes can be
    /// suppressed. Must be bracketed by [`Ctx::finish_sleep_and_wake`].
    pub(crate) fn begin_sleep(&mut self, p: ProcId) {
        if self.sleeping.len() <= p.0 {
            self.sleeping.resize(p.0 + 1, false);
        }
        debug_assert!(!self.sleeping[p.0], "nested sleep for one process");
        self.sleeping[p.0] = true;
    }

    /// Clear `p`'s sleeping mark and enqueue its (now genuine) timer wake.
    pub(crate) fn finish_sleep_and_wake(&mut self, p: ProcId) {
        debug_assert!(self.sleeping.get(p.0).copied().unwrap_or(false));
        self.sleeping[p.0] = false;
        self.wake(p);
    }

    /// CPU-charge batching fast path: try to satisfy a `sleep(d)` by
    /// advancing the clock inline, with no timer, no park, and no
    /// driver↔process round trip. Legal only when the advance is invisible:
    /// no process is pending a wake (they would have run first), no queued
    /// event fires at or before the target time (`<=` because an
    /// already-queued event at exactly `now + d` carries a smaller seq than
    /// the sleep timer would get, so the reference discipline fires it
    /// first), and the target does not cross the run deadline. Counts the
    /// skipped sleep timer as one fired event so `events_fired` stays
    /// identical to the reference discipline.
    pub(crate) fn try_advance_sleep(&mut self, d: Dur) -> bool {
        if self.reference || !self.wake_fifo.is_empty() {
            return false;
        }
        let to = self.now + d;
        if to > self.deadline {
            return false;
        }
        // `low.0 > to` proves no queued event fires at or before the target;
        // otherwise pay one scan to refresh the bound and re-check exactly.
        if self.low.0 <= to {
            self.low = self.next_event_key().unwrap_or((SimTime::MAX, u64::MAX));
            if self.low.0 <= to {
                return false;
            }
        }
        self.now = to;
        self.events_fired += 1;
        self.sleep_fastpaths += 1;
        true
    }

    /// Train-fusion fast path: advance the clock to the next fused packet's
    /// arrival at (`at`, `seq`) — `seq` being the sequence number the
    /// packet's own delivery event holds in reserve — iff firing it now is
    /// exactly what the per-packet discipline would do next: no wake is
    /// pending (a woken process would run first), no queued event (stale
    /// keys conservatively included) orders before `(at, seq)`, and the run
    /// deadline is not crossed. Counts the fused delivery as one fired
    /// event, keeping `events_fired` bit-identical to per-packet runs.
    pub fn try_advance_to(&mut self, at: SimTime, seq: u64) -> bool {
        debug_assert!(!self.reference, "burst path must not run under the reference discipline");
        if !self.wake_fifo.is_empty() || at > self.deadline {
            return false;
        }
        // `low > (at, seq)` proves every queued key orders after the fused
        // packet; otherwise refresh the bound with one scan and re-check.
        if self.low <= (at, seq) {
            self.low = self.next_event_key().unwrap_or((SimTime::MAX, u64::MAX));
            if self.low < (at, seq) {
                return false;
            }
        }
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_fired += 1;
        true
    }

    /// Drain the pending wake batch into `out` (cleared first). Reuses the
    /// driver's buffer so the per-batch `Vec` allocation of the old
    /// `take_wakes` is gone. Batch semantics are load-bearing: the pending
    /// set is cleared wholesale, so a wake issued *during* the batch — even
    /// to a process earlier in it — lands in the next batch.
    pub(crate) fn take_wakes_into(&mut self, out: &mut Vec<ProcId>) {
        out.clear();
        out.extend(self.wake_fifo.drain(..));
        self.wake_pending.clear();
    }

    #[cfg(test)]
    pub(crate) fn take_wakes(&mut self) -> Vec<ProcId> {
        let mut v = Vec::new();
        self.take_wakes_into(&mut v);
        v
    }

    pub(crate) fn has_wakes(&self) -> bool {
        !self.wake_fifo.is_empty()
    }

    /// If the pending wake batch consists of exactly one process, return it
    /// without consuming — the inline-driver fast path in
    /// [`crate::ProcEnv::park`] uses this to decide between continuing
    /// itself, a direct process→process handoff, and deferring to the real
    /// driver.
    pub(crate) fn sole_wake(&self) -> Option<ProcId> {
        if self.wake_fifo.len() == 1 {
            Some(self.wake_fifo[0])
        } else {
            None
        }
    }

    /// Consume the single-wake batch [`Ctx::sole_wake`] reported. Equivalent
    /// to the driver draining the batch: the fifo and the pending set are
    /// cleared wholesale, so wakes issued afterwards land in a fresh batch.
    pub(crate) fn consume_sole_wake(&mut self) {
        debug_assert_eq!(self.wake_fifo.len(), 1);
        self.wake_fifo.clear();
        self.wake_pending.clear();
    }

    /// Visit occupied buckets of `occ` circularly from `start`, calling `f`
    /// until it returns `true` (stop) or a full revolution completes.
    /// Associated (not a method) so callers can pass either level's bitmap
    /// while the closure borrows that level's buckets.
    fn for_each_occupied_from(
        occ: &[u64; WHEEL_WORDS],
        start: usize,
        mut f: impl FnMut(usize) -> bool,
    ) {
        let sw = start / 64;
        let sb = start % 64;
        // First (partial) word: bits at or after the start bucket.
        let mut word = occ[sw] & (!0u64 << sb);
        let mut wi = sw;
        for step in 0..=WHEEL_WORDS {
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                let b = wi * 64 + bit;
                // On the wrap-around revisit of the start word, stop at the
                // start bucket: one full revolution covers every bucket once.
                if step == WHEEL_WORDS && b >= start {
                    return;
                }
                if f(b) {
                    return;
                }
                word &= word - 1;
            }
            if step == WHEEL_WORDS {
                return;
            }
            wi = (wi + 1) % WHEEL_WORDS;
            word = occ[wi];
            if step + 1 == WHEEL_WORDS && wi == sw {
                // Wrapped back to the start word: only bits before the start
                // bucket remain unvisited.
                word &= !(!0u64 << sb);
                if word == 0 {
                    return;
                }
            }
        }
    }

    /// Sweep stale keys out of bucket `b` of the chosen level; returns
    /// (position, key) of the bucket's (time, seq)-minimum, or `None` if it
    /// swept empty.
    #[inline]
    fn sweep_bucket_min(&mut self, b: usize, level2: bool) -> Option<(usize, Key)> {
        let slots = &self.slots;
        let (v, len, occ) = if level2 {
            (&mut self.wheel2[b], &mut self.wheel2_len, &mut self.occ2)
        } else {
            (&mut self.wheel[b], &mut self.wheel_len, &mut self.occ)
        };
        let mut i = 0;
        let mut cleaned = 0;
        while i < v.len() {
            let k = v[i];
            if slots[k.idx as usize].gen != k.gen {
                v.swap_remove(i);
                cleaned += 1;
            } else {
                i += 1;
            }
        }
        let min = if v.is_empty() {
            None
        } else {
            let mut pos = 0;
            let mut key = v[0];
            for (j, k) in v.iter().enumerate().skip(1) {
                if (k.at, k.seq) < (key.at, key.seq) {
                    pos = j;
                    key = *k;
                }
            }
            Some((pos, key))
        };
        *len -= cleaned;
        if min.is_none() {
            occ[b / 64] &= !(1 << (b % 64));
        }
        min
    }

    /// Earliest entry of one wheel level: first non-empty bucket circularly
    /// from `now`, stale keys swept out as encountered. Returns (bucket,
    /// position, key).
    fn wheel_min_clean(&mut self, level2: bool) -> Option<(usize, usize, Key)> {
        let (mut start, horizon) = if level2 {
            (bucket2_of(self.now), WHEEL2_HORIZON_NS)
        } else {
            (bucket_of(self.now), WHEEL_HORIZON_NS)
        };
        loop {
            let len = if level2 { self.wheel2_len } else { self.wheel_len };
            if len == 0 {
                return None;
            }
            let occ = if level2 { &self.occ2 } else { &self.occ };
            let mut found = None;
            Self::for_each_occupied_from(occ, start, |b| {
                found = Some(b);
                true
            });
            let b = found?;
            if let Some((pos, key)) = self.sweep_bucket_min(b, level2) {
                debug_assert!(
                    key.at.as_nanos() - self.now.as_nanos() < horizon,
                    "live wheel entry beyond the horizon: the insert gate is broken"
                );
                return Some((b, pos, key));
            }
            // The bucket held only stale keys and swept empty (its occupancy
            // bit is now clear); resume the revolution right after it. Every
            // bucket between the original start and `b` is already known
            // empty, so no bucket is visited out of circular time order.
            start = (b + 1) & (WHEEL_SLOTS - 1);
        }
    }

    /// Earliest live heap key, popping stale tops.
    fn heap_min_clean(&mut self) -> Option<Key> {
        while let Some(Reverse(k)) = self.heap.peek() {
            if self.slots[k.idx as usize].gen != k.gen {
                self.heap.pop();
                self.heap_dead -= 1;
            } else {
                return Some(*k);
            }
        }
        None
    }

    /// Pop the next non-cancelled event no later than `bound`, advancing the
    /// clock to its timestamp. One scan decides emptiness, the deadline
    /// check, and the pop — the driver loop needs no separate
    /// [`Ctx::next_event_time`] peek per event.
    fn pop_next(&mut self, bound: SimTime) -> Popped<W> {
        let w1 = self.wheel_min_clean(false);
        let w2 = self.wheel_min_clean(true);
        let heap_min = self.heap_min_clean();
        // Pick the (time, seq) minimum of the three structures without
        // removing it yet: a key past `bound` must stay queued. Keys are
        // unique in (at, seq), so strict `<` suffices.
        let mut best: Option<(Key, Option<(bool, usize, usize)>)> =
            w1.map(|(b, pos, k)| (k, Some((false, b, pos))));
        if let Some((b, pos, k)) = w2 {
            if best.as_ref().is_none_or(|(bk, _)| (k.at, k.seq) < (bk.at, bk.seq)) {
                best = Some((k, Some((true, b, pos))));
            }
        }
        if let Some(k) = heap_min {
            if best.as_ref().is_none_or(|(bk, _)| (k.at, k.seq) < (bk.at, bk.seq)) {
                best = Some((k, None));
            }
        }
        // Drain every ghost that orders before the live minimum, with the
        // same accounting its no-op event would have had: clock advance,
        // `low` tightened, one `events_fired` tick. A ghost past `bound`
        // stays queued and answers `PastBound`, exactly as the no-op would.
        while let Some(&Reverse(g)) = self.ghosts.peek() {
            if best.as_ref().is_some_and(|(bk, _)| (bk.at, bk.seq) < g) {
                break;
            }
            if g.0 > bound {
                return Popped::PastBound;
            }
            self.ghosts.pop();
            debug_assert!(g.0 >= self.now, "ghost predates the clock");
            self.now = self.now.max(g.0);
            self.low = g;
            self.events_fired += 1;
            self.ghost_fires += 1;
        }
        let Some((key, loc)) = best else { return Popped::Empty };
        if key.at > bound {
            return Popped::PastBound;
        }
        match loc {
            Some((level2, b, pos)) => {
                let (wheel, len, occ) = if level2 {
                    (&mut self.wheel2, &mut self.wheel2_len, &mut self.occ2)
                } else {
                    (&mut self.wheel, &mut self.wheel_len, &mut self.occ)
                };
                wheel[b].swap_remove(pos);
                *len -= 1;
                if wheel[b].is_empty() {
                    occ[b / 64] &= !(1 << (b % 64));
                }
            }
            None => {
                self.heap.pop();
            }
        }
        // The popped key was the queue minimum, so no smaller key remains:
        // it is the tightest free lower bound for the fast paths.
        self.low = (key.at, key.seq);
        let s = &mut self.slots[key.idx as usize];
        debug_assert!(s.occupied && s.gen == key.gen);
        // Safety: a live key ⇒ its slot payload is initialized; the value is
        // moved out exactly once and the slot freed below.
        let ev = unsafe { s.ev.assume_init_read() };
        self.free_slot(key.idx);
        debug_assert!(key.at >= self.now, "time went backwards");
        self.now = key.at;
        self.events_fired += 1;
        Popped::Fired(FiredEvent(ev))
    }

    /// Driver entry point: pop the next event unless it lies past the run
    /// deadline or the queue is exhausted.
    pub(crate) fn pop_event_due(&mut self) -> Popped<W> {
        self.pop_next(self.deadline)
    }

    /// Pop the next non-cancelled event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    #[cfg(test)]
    pub(crate) fn pop_event(&mut self) -> Option<FiredEvent<W>> {
        match self.pop_next(SimTime::MAX) {
            Popped::Fired(f) => Some(f),
            _ => None,
        }
    }

    /// Timestamp of the next pending (possibly cancelled) event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.next_event_key().map(|(t, _)| t)
    }

    /// (time, seq) of the next pending event. Conservative: stale keys are
    /// included (they order no later than any live event they shadow), so
    /// callers using this to gate inline fast paths only ever decline, never
    /// jump the queue.
    pub fn next_event_key(&self) -> Option<(SimTime, u64)> {
        let mut best: Option<(SimTime, u64)> = None;
        if self.wheel_len > 0 {
            let start = bucket_of(self.now);
            Self::for_each_occupied_from(&self.occ, start, |b| {
                best = self.wheel[b].iter().map(|k| (k.at, k.seq)).min();
                best.is_some()
            });
            // Stale keys may predate `now`, but nothing (live or stale) can
            // sit more than one horizon ahead — a wrapped near-horizon entry
            // here would make the returned key larger than the true queue
            // minimum and break the fast paths' lower-bound contract.
            debug_assert!(
                best.is_none_or(
                    |(at, _)| at.as_nanos() < self.now.as_nanos().saturating_add(WHEEL_HORIZON_NS)
                ),
                "wheel key beyond the horizon: the insert gate is broken"
            );
        }
        if self.wheel2_len > 0 {
            let start = bucket2_of(self.now);
            let mut best2: Option<(SimTime, u64)> = None;
            Self::for_each_occupied_from(&self.occ2, start, |b| {
                best2 = self.wheel2[b].iter().map(|k| (k.at, k.seq)).min();
                best2.is_some()
            });
            debug_assert!(
                best2.is_none_or(
                    |(at, _)| at.as_nanos() < self.now.as_nanos().saturating_add(WHEEL2_HORIZON_NS)
                ),
                "second-level wheel key beyond the horizon: the insert gate is broken"
            );
            if let Some(k2) = best2 {
                if best.is_none_or(|b| k2 < b) {
                    best = Some(k2);
                }
            }
        }
        if let Some(Reverse(k)) = self.heap.peek() {
            let hk = (k.at, k.seq);
            if best.is_none_or(|b| hk < b) {
                best = Some(hk);
            }
        }
        // Ghosts gate the fast paths exactly like the abandoned no-op
        // events they replace: a pending ghost is a queued key.
        if let Some(&Reverse(g)) = self.ghosts.peek() {
            if best.is_none_or(|b| g < b) {
                best = Some(g);
            }
        }
        best
    }
}

impl<W> Drop for Ctx<W> {
    fn drop(&mut self) {
        for s in &mut self.slots {
            if s.occupied {
                s.occupied = false;
                // Safety: occupied ⇒ initialized; run the closure's
                // destructor (never-fired timers at end of run).
                unsafe { s.ev.assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn ctx() -> Ctx<Vec<u32>> {
        Ctx::new(derive_rng(0, 0))
    }

    fn drain(world: &mut Vec<u32>, ctx: &mut Ctx<Vec<u32>>) {
        while let Some(f) = ctx.pop_event() {
            f.call(world, ctx);
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        c.schedule_in(Dur::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(c.now(), SimTime::ZERO + Dur::from_secs(3));
    }

    #[test]
    fn equal_timestamps_fire_in_insertion_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        for i in 0..10 {
            c.schedule_in(Dur::from_secs(1), move |w: &mut Vec<u32>, _| w.push(i));
        }
        drain(&mut w, &mut c);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn near_and_far_timers_interleave_in_order() {
        // Mix timers across all three backends (L1 wheel, L2 wheel, heap);
        // the pop order must be globally (time, seq) sorted.
        let mut c = ctx();
        let mut w = Vec::new();
        let delays = [
            (20_000_000_000u64, 5u32), // past the L2 horizon (heap)
            (10_000, 0),               // L1 wheel
            (1_000_000_000, 3),        // L2 wheel
            (20_000, 1),               // L1 wheel
            (40_000_000, 2),           // just past the L1 horizon (L2 wheel)
            (2_000_000_000, 4),        // L2 wheel
        ];
        for &(d, tag) in &delays {
            c.schedule_in(Dur::from_nanos(d), move |w: &mut Vec<u32>, _| w.push(tag));
        }
        drain(&mut w, &mut c);
        assert_eq!(w, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn near_horizon_timer_from_unaligned_now_does_not_wrap() {
        // Regression: with `now` not grain-aligned, a delay just under the
        // horizon lies a full revolution of buckets ahead. It must fall to
        // the next level down (today the L2 wheel), not wrap into the
        // scan-start bucket — which fired it before earlier timers in later
        // buckets (and tripped the "time went backwards" debug assertion).
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_at(SimTime::from_nanos(100), |w: &mut Vec<u32>, _| w.push(0));
        drain(&mut w, &mut c);
        assert_eq!(c.now(), SimTime::from_nanos(100));
        c.schedule_in(Dur::from_nanos(WHEEL_HORIZON_NS - 50), |w: &mut Vec<u32>, _| w.push(2));
        c.schedule_in(Dur::from_micros(10), |w: &mut Vec<u32>, _| w.push(1));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![0, 1, 2]);
    }

    #[test]
    fn next_event_key_is_a_lower_bound_near_the_horizon() {
        // Same wrap scenario as above, but through the fast-path probe: the
        // reported key must be the true queue minimum (the 10 µs timer), not
        // the wrapped near-horizon one — otherwise `try_advance_to` could
        // jump the clock past a queued earlier event.
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_at(SimTime::from_nanos(100), |w: &mut Vec<u32>, _| w.push(0));
        drain(&mut w, &mut c);
        c.schedule_in(Dur::from_nanos(WHEEL_HORIZON_NS - 50), |_: &mut Vec<u32>, _| {});
        c.schedule_in(Dur::from_micros(10), |_: &mut Vec<u32>, _| {});
        assert_eq!(
            c.next_event_time(),
            Some(SimTime::from_nanos(100) + Dur::from_micros(10))
        );
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut c = ctx();
        let mut w = Vec::new();
        let id = c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(99));
        c.schedule_in(Dur::from_secs(2), |w: &mut Vec<u32>, _| w.push(1));
        c.cancel(id);
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, c: &mut Ctx<Vec<u32>>| {
            w.push(1);
            c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(2));
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(c.now(), SimTime::ZERO + Dur::from_secs(2));
    }

    #[test]
    fn schedule_at_past_clamps_to_now() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(5), |w: &mut Vec<u32>, c: &mut Ctx<Vec<u32>>| {
            w.push(1);
            // Try to schedule in the past; must fire at `now`, not panic.
            c.schedule_at(SimTime::ZERO, |w: &mut Vec<u32>, _| w.push(2));
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        let mut c = ctx();
        let mut w = Vec::new();
        let id = c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1]);
        c.cancel(id); // already fired: generation mismatch, no-op
        c.cancel(id);
        // A fresh timer must still schedule and fire normally afterwards.
        c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(2));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn cancel_runs_the_closure_destructor_immediately() {
        let alive = Arc::new(AtomicUsize::new(0));
        let mut c = ctx();
        let token = Arc::clone(&alive);
        alive.fetch_add(1, Ordering::SeqCst);
        struct Dec(Arc<AtomicUsize>);
        impl Drop for Dec {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let guard = Dec(token);
        let id = c.schedule_in(Dur::from_secs(1), move |_: &mut Vec<u32>, _| {
            let _g = &guard;
        });
        assert_eq!(alive.load(Ordering::SeqCst), 1);
        c.cancel(id);
        assert_eq!(alive.load(Ordering::SeqCst), 0, "cancel must drop the capture eagerly");
    }

    #[test]
    fn oversized_closures_fall_back_to_boxing() {
        // A capture larger than the inline buffer must still schedule, fire,
        // and deliver its payload intact.
        let mut c = ctx();
        let mut w = Vec::new();
        let big = [7u64; 64]; // 512 B > inline capacity
        c.schedule_in(Dur::from_micros(1), move |w: &mut Vec<u32>, _| {
            w.push(big.iter().sum::<u64>() as u32)
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![7 * 64]);
    }

    #[test]
    fn slab_slots_are_reused() {
        let mut c = ctx();
        let mut w = Vec::new();
        for round in 0..1000u32 {
            c.schedule_in(Dur::from_micros(1), move |w: &mut Vec<u32>, _| w.push(round));
            drain(&mut w, &mut c);
        }
        assert_eq!(w.len(), 1000);
        assert!(c.slots.len() <= 2, "sequential schedule/fire must reuse one slot");
    }

    #[test]
    fn heap_tombstones_are_bounded_under_churn() {
        let mut c = ctx();
        // Re-arm/cancel churn on far-horizon timers (heap residents), as
        // the SCTP T3 and SACK timers do on every ack.
        for i in 0..10_000u64 {
            let id = c.schedule_in(Dur::from_secs(1 + i), |_: &mut Vec<u32>, _| {});
            c.cancel(id);
        }
        assert!(
            c.heap_dead <= c.heap.len().max(64),
            "stale heap keys ({}) must not dominate the heap ({})",
            c.heap_dead,
            c.heap.len()
        );
        assert!(c.slots.len() <= 2, "cancel must free slab slots for reuse");
        let mut w = Vec::new();
        drain(&mut w, &mut c);
        assert!(w.is_empty());
    }

    #[test]
    fn wheel_tombstones_are_swept_by_the_pop_scan() {
        let mut c = ctx();
        let mut w = Vec::new();
        for i in 0..100u64 {
            let id = c.schedule_in(Dur::from_micros(1 + i), |_: &mut Vec<u32>, _| {});
            c.cancel(id);
        }
        c.schedule_in(Dur::from_micros(500), |w: &mut Vec<u32>, _| w.push(1));
        assert_eq!(c.wheel_len, 101, "stale keys linger until swept");
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1]);
        assert_eq!(c.wheel_len, 0, "pop scan sweeps stale keys");
    }

    #[test]
    fn compaction_preserves_fire_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        let mut keep = Vec::new();
        for i in 0..200u32 {
            let id = c.schedule_in(Dur::from_secs(i as u64 + 1), move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
            if i % 3 == 0 {
                keep.push(i);
            } else {
                c.cancel(id); // forces at least one heap compaction
            }
        }
        drain(&mut w, &mut c);
        assert_eq!(w, keep, "survivors fire in time order after compaction");
    }

    #[test]
    fn train_seq_reservation_orders_against_foreign_events() {
        // A train reserving seqs 0..3, then a foreign event (seq 3) at the
        // same instant as packet 2: the foreign event was scheduled after
        // the train, so the per-packet discipline fires packet 2 first. The
        // continuation chain (schedule_at_seq with the reserved seq, then an
        // inline advance) must win the tie exactly the same way.
        let mut c = ctx();
        let mut w = Vec::new();
        let base = c.schedule_train_at(SimTime::from_nanos(1000), 2, move |w: &mut Vec<u32>, c| {
            w.push(10); // packet 0, seq 0
            // Fall back immediately: schedule packet 1's continuation with
            // its reserved seq 1.
            c.schedule_at_seq(SimTime::from_nanos(3000), 1, move |w: &mut Vec<u32>, c| {
                w.push(11); // packet 1
                // Packet 2 at the same instant as the foreign (3000, seq 3)
                // event: reserved seq 2 < 3, so the inline advance is legal.
                assert!(c.try_advance_to(SimTime::from_nanos(3000), 2));
                w.push(12);
            });
        });
        assert_eq!(base, 0);
        c.schedule_at(SimTime::from_nanos(3000), |w: &mut Vec<u32>, _| w.push(99));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![10, 11, 12, 99]);
    }

    #[test]
    fn try_advance_to_declines_when_an_earlier_event_is_queued() {
        let mut c = ctx();
        let mut w = Vec::new();
        // Foreign event first (seq 0), then the train (seqs 1..3).
        c.schedule_at(SimTime::from_nanos(2000), |w: &mut Vec<u32>, _| w.push(5));
        let base = c.schedule_train_at(SimTime::from_nanos(1000), 1, move |w: &mut Vec<u32>, c| {
            w.push(0); // packet 0, seq 1
            // Packet 1 would arrive at 2500, but the foreign event at
            // (2000, seq 0) orders first: the inline advance must decline
            // and the packet fall back to a real event with its reserved
            // seq.
            assert!(!c.try_advance_to(SimTime::from_nanos(2500), 2));
            c.schedule_at_seq(SimTime::from_nanos(2500), 2, |w: &mut Vec<u32>, _| w.push(1));
        });
        assert_eq!(base, 1);
        drain(&mut w, &mut c);
        assert_eq!(w, vec![0, 5, 1]);
    }

    #[test]
    fn events_fired_counts_inline_advances() {
        let mut c = ctx();
        let mut w = Vec::new();
        let _ = c.schedule_train_at(SimTime::from_nanos(100), 2, move |w: &mut Vec<u32>, c| {
            w.push(0);
            assert!(c.try_advance_to(SimTime::from_nanos(200), 1));
            w.push(1);
            assert!(c.try_advance_to(SimTime::from_nanos(300), 2));
            w.push(2);
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![0, 1, 2]);
        assert_eq!(c.events_fired(), 3, "each fused packet counts as one event");
        assert_eq!(c.now(), SimTime::from_nanos(300));
    }

    #[test]
    fn coarse_timers_land_in_the_second_wheel_not_the_heap() {
        // The satellite claim: RTO-scale timers (hundreds of ms) and
        // compute-farm sleeps (up to seconds) must no longer fall to the
        // heap. Only the 20 s outlier may.
        let mut c = ctx();
        let mut w = Vec::new();
        for (i, ms) in [200u64, 250, 1_000, 5_000].into_iter().enumerate() {
            c.schedule_in(Dur::from_millis(ms), move |w: &mut Vec<u32>, _| w.push(i as u32));
        }
        assert_eq!(c.heap_falls(), 0, "coarse timers must stay on a wheel");
        assert_eq!(c.wheel2_len, 4);
        assert_eq!(c.wheel_hits(), 4);
        c.schedule_in(Dur::from_secs(20), |w: &mut Vec<u32>, _| w.push(9));
        assert_eq!(c.heap_falls(), 1, "past the L2 horizon the heap still catches");
        drain(&mut w, &mut c);
        assert_eq!(w, vec![0, 1, 2, 3, 9]);
        assert_eq!(c.wheel2_len, 0);
    }

    #[test]
    fn second_wheel_cancel_leaves_tombstones_swept_by_the_pop_scan() {
        let mut c = ctx();
        let mut w = Vec::new();
        for i in 0..64u64 {
            let id = c.schedule_in(Dur::from_millis(100 + i * 10), |_: &mut Vec<u32>, _| {});
            c.cancel(id);
        }
        c.schedule_in(Dur::from_secs(2), |w: &mut Vec<u32>, _| w.push(1));
        assert_eq!(c.wheel2_len, 65, "stale L2 keys linger until swept");
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1]);
        assert_eq!(c.wheel2_len, 0, "pop scan sweeps stale L2 keys");
    }

    #[test]
    fn next_event_key_sees_second_wheel_entries() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_at(SimTime::from_nanos(100), |w: &mut Vec<u32>, _| w.push(0));
        drain(&mut w, &mut c);
        c.schedule_in(Dur::from_millis(200), |_: &mut Vec<u32>, _| {});
        assert_eq!(
            c.next_event_time(),
            Some(SimTime::from_nanos(100) + Dur::from_millis(200))
        );
        // An L1-resident timer in front of it must win the probe.
        c.schedule_in(Dur::from_micros(5), |_: &mut Vec<u32>, _| {});
        assert_eq!(
            c.next_event_time(),
            Some(SimTime::from_nanos(100) + Dur::from_micros(5))
        );
    }

    #[test]
    fn run_due_fires_due_events_and_advances_to_the_bound() {
        let mut c: Ctx<Vec<u32>> = Ctx::standalone(derive_rng(0, 0));
        let mut w = Vec::new();
        c.schedule_in(Dur::from_micros(10), |w: &mut Vec<u32>, _| w.push(1));
        c.schedule_in(Dur::from_micros(20), |w: &mut Vec<u32>, c: &mut Ctx<Vec<u32>>| {
            w.push(2);
            // A follow-on inside the bound fires in the same pump.
            c.schedule_in(Dur::from_micros(5), |w: &mut Vec<u32>, _| w.push(3));
        });
        c.schedule_in(Dur::from_millis(1), |w: &mut Vec<u32>, _| w.push(9));
        let fired = c.run_due(&mut w, SimTime::from_nanos(100_000));
        assert_eq!(fired, 3);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(c.now(), SimTime::from_nanos(100_000), "clock lands on the bound");
        // The past-bound timer is intact and fires on the next pump.
        let fired = c.run_due(&mut w, SimTime::from_nanos(2_000_000));
        assert_eq!(fired, 1);
        assert_eq!(w, vec![1, 2, 3, 9]);
        assert_eq!(c.now(), SimTime::from_nanos(2_000_000));
        // An empty queue still advances the clock.
        assert_eq!(c.run_due(&mut w, SimTime::from_nanos(3_000_000)), 0);
        assert_eq!(c.now(), SimTime::from_nanos(3_000_000));
    }

    #[test]
    fn duplicate_wakes_coalesce() {
        let mut c = ctx();
        c.wake(ProcId(3));
        c.wake(ProcId(3));
        c.wake(ProcId(1));
        assert_eq!(c.take_wakes(), vec![ProcId(3), ProcId(1)]);
        assert!(c.take_wakes().is_empty());
    }
}
