//! The discrete-event scheduler.
//!
//! [`Ctx<W>`] is the handle every event callback and every world-access
//! closure receives alongside `&mut W`. It provides the current simulated
//! time, timer scheduling/cancellation, process wakeups, and the master RNG.
//!
//! Determinism: events at equal timestamps fire in insertion order (a
//! monotonic sequence number breaks ties), and process wakeups drain FIFO.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use rand::rngs::SmallRng;

use crate::process::ProcId;
use crate::time::{Dur, SimTime};

/// Identifies a scheduled timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Ctx<W>) + Send>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Scheduler context: simulated clock, event queue, wake queue, RNG.
pub struct Ctx<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry<W>>,
    cancelled: HashSet<u64>,
    wake_fifo: VecDeque<ProcId>,
    wake_pending: HashSet<ProcId>,
    /// Master RNG for the simulation. Components that need reproducible
    /// independent streams should use [`crate::rng::derive_rng`] instead and
    /// keep their own generator; this one is for ad-hoc draws (e.g. link loss).
    pub rng: SmallRng,
    events_fired: u64,
}

impl<W> Ctx<W> {
    pub(crate) fn new(rng: SmallRng) -> Self {
        Ctx {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            wake_fifo: VecDeque::new(),
            wake_pending: HashSet::new(),
            rng,
            events_fired: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events fired so far (diagnostic).
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Schedule `f` to run at absolute time `at` (clamped to be >= now).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry { at, seq, f: Box::new(f) });
        TimerId(seq)
    }

    /// Schedule `f` to run after `delay`.
    pub fn schedule_in(
        &mut self,
        delay: Dur,
        f: impl FnOnce(&mut W, &mut Ctx<W>) + Send + 'static,
    ) -> TimerId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancel a previously scheduled timer. Cancelling an already-fired or
    /// already-cancelled timer is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    /// Mark a process runnable. Wakeups are drained FIFO by the driver before
    /// the next timed event fires. Duplicate wakes of an already-pending
    /// process coalesce.
    pub fn wake(&mut self, p: ProcId) {
        if self.wake_pending.insert(p) {
            self.wake_fifo.push_back(p);
        }
    }

    /// Wake every process in a slice (convenience for waiter lists).
    pub fn wake_all(&mut self, ps: &[ProcId]) {
        for &p in ps {
            self.wake(p);
        }
    }

    pub(crate) fn take_wakes(&mut self) -> Vec<ProcId> {
        self.wake_pending.clear();
        self.wake_fifo.drain(..).collect()
    }

    pub(crate) fn has_wakes(&self) -> bool {
        !self.wake_fifo.is_empty()
    }

    /// Pop the next non-cancelled event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub(crate) fn pop_event(&mut self) -> Option<EventFn<W>> {
        while let Some(e) = self.queue.pop() {
            if self.cancelled.remove(&e.seq) {
                continue;
            }
            debug_assert!(e.at >= self.now, "time went backwards");
            self.now = e.at;
            self.events_fired += 1;
            return Some(e.f);
        }
        None
    }

    /// Timestamp of the next pending (possibly cancelled) event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    fn ctx() -> Ctx<Vec<u32>> {
        Ctx::new(derive_rng(0, 0))
    }

    fn drain(world: &mut Vec<u32>, ctx: &mut Ctx<Vec<u32>>) {
        while let Some(f) = ctx.pop_event() {
            f(world, ctx);
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(2), |w: &mut Vec<u32>, _| w.push(2));
        c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(1));
        c.schedule_in(Dur::from_secs(3), |w: &mut Vec<u32>, _| w.push(3));
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2, 3]);
        assert_eq!(c.now(), SimTime::ZERO + Dur::from_secs(3));
    }

    #[test]
    fn equal_timestamps_fire_in_insertion_order() {
        let mut c = ctx();
        let mut w = Vec::new();
        for i in 0..10 {
            c.schedule_in(Dur::from_secs(1), move |w: &mut Vec<u32>, _| w.push(i));
        }
        drain(&mut w, &mut c);
        assert_eq!(w, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        let mut c = ctx();
        let mut w = Vec::new();
        let id = c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(99));
        c.schedule_in(Dur::from_secs(2), |w: &mut Vec<u32>, _| w.push(1));
        c.cancel(id);
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, c: &mut Ctx<Vec<u32>>| {
            w.push(1);
            c.schedule_in(Dur::from_secs(1), |w: &mut Vec<u32>, _| w.push(2));
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2]);
        assert_eq!(c.now(), SimTime::ZERO + Dur::from_secs(2));
    }

    #[test]
    fn schedule_at_past_clamps_to_now() {
        let mut c = ctx();
        let mut w = Vec::new();
        c.schedule_in(Dur::from_secs(5), |w: &mut Vec<u32>, c: &mut Ctx<Vec<u32>>| {
            w.push(1);
            // Try to schedule in the past; must fire at `now`, not panic.
            c.schedule_at(SimTime::ZERO, |w: &mut Vec<u32>, _| w.push(2));
        });
        drain(&mut w, &mut c);
        assert_eq!(w, vec![1, 2]);
    }

    #[test]
    fn duplicate_wakes_coalesce() {
        let mut c = ctx();
        c.wake(ProcId(3));
        c.wake(ProcId(3));
        c.wake(ProcId(1));
        assert_eq!(c.take_wakes(), vec![ProcId(3), ProcId(1)]);
        assert!(c.take_wakes().is_empty());
    }
}
