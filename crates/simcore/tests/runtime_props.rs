//! Discipline-equivalence property tests for the runtime fast path.
//!
//! The token-handoff runtime coalesces wakes (suppressing wakes aimed at a
//! process parked in `sleep`, advancing uncontended sleeps inline) and
//! batches CPU charges. All of that is wall-clock optimisation only: under
//! any interleaving of park/wake/charge the observable schedule — world
//! mutations, their order, timestamps, event counts, final sim time — must
//! be bit-identical to the pre-overhaul reference discipline, which issues
//! one full handoff per wake and per sleep. These tests drive both
//! disciplines over random programs and demand exactly that.

use proptest::prelude::*;
use simcore::{set_reference_discipline, Dur, ProcEnv, ProcId, Runtime};

/// One step of a process's scripted behaviour.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Park in `sleep` for a duration — the coalescing fast-path target.
    Sleep(u64),
    /// Two back-to-back short charges, like `cost.rs` billing CPU around a
    /// progress pass.
    Charge(u64),
    /// Deposit into `q`'s mailbox and wake it (possibly a self-wake, and
    /// possibly aimed at a process that is running, parked, or sleeping —
    /// the suppression cases).
    Ping(usize),
    /// Record (proc, step, now) in the shared log.
    Log,
}

fn ops(n_procs: usize) -> impl Strategy<Value = Vec<Op>> {
    let one = prop_oneof![
        (1u64..3_000).prop_map(Op::Sleep),
        (1u64..200).prop_map(Op::Charge),
        (0..n_procs).prop_map(Op::Ping),
        Just(Op::Log),
    ];
    prop::collection::vec(one, 0..12)
}

#[derive(Default)]
struct W {
    log: Vec<(usize, usize, u64)>,
    pings: Vec<u32>,
}

/// Runs the scripted program once and returns everything observable:
/// the log, the ping counters, final sim time, and events fired.
fn run_once(scripts: &[Vec<Op>], reference: bool) -> (Vec<(usize, usize, u64)>, Vec<u32>, u64, u64) {
    let n = scripts.len();
    // How many pings each process must eventually see: its block_on target.
    let mut expected = vec![0u32; n];
    for s in scripts {
        for op in s {
            if let Op::Ping(q) = op {
                expected[*q] += 1;
            }
        }
    }
    let mut rt = Runtime::new(W { log: Vec::new(), pings: vec![0; n] }, 12);
    for (p, script) in scripts.iter().enumerate() {
        let script = script.clone();
        let want = expected[p];
        rt.spawn(format!("p{p}"), move |env: ProcEnv<W>| {
            for (i, &op) in script.iter().enumerate() {
                match op {
                    Op::Sleep(d) => env.sleep(Dur::from_nanos(d)),
                    Op::Charge(d) => {
                        env.sleep(Dur::from_nanos(d));
                        env.sleep(Dur::from_nanos(d / 2 + 1));
                    }
                    Op::Ping(q) => env.with(move |w, ctx| {
                        w.pings[q] += 1;
                        ctx.wake(ProcId(q));
                    }),
                    Op::Log => {
                        let t = env.now().as_nanos();
                        env.with(move |w, _| w.log.push((p, i, t)));
                    }
                }
            }
            // Park until every ping aimed at us has landed; the wakes come
            // from the pingers, so this exercises wake-after-park,
            // wake-before-park, and wake-during-sleep orderings.
            env.block_on(move |w, _| (w.pings[p] >= want).then_some(()));
        });
    }
    set_reference_discipline(reference);
    let out = rt.run();
    set_reference_discipline(false);
    (out.world.log, out.world.pings, out.sim_time.as_nanos(), out.events)
}

proptest! {
    /// Fast discipline ≡ reference discipline: same log (order and
    /// timestamps), same counters, same final time, same event count.
    #[test]
    fn fast_discipline_matches_reference(scripts in prop::collection::vec(ops(3), 3..4)) {
        let fast = run_once(&scripts, false);
        let reference = run_once(&scripts, true);
        prop_assert_eq!(fast, reference);
    }

    /// The fast discipline is deterministic against itself (same program,
    /// two runs), so the comparison above can't pass by accident of both
    /// sides being equally scrambled.
    #[test]
    fn fast_discipline_is_self_deterministic(scripts in prop::collection::vec(ops(4), 4..5)) {
        prop_assert_eq!(run_once(&scripts, false), run_once(&scripts, false));
    }
}
