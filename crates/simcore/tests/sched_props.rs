//! Property tests for the simulation core: event ordering, determinism,
//! and runtime scheduling invariants.

use proptest::prelude::*;
use simcore::{Dur, ProcEnv, Runtime, SimTime};

proptest! {
    /// Events always fire in (time, insertion) order, regardless of the
    /// insertion order of their deadlines.
    #[test]
    fn event_order_is_total(delays in prop::collection::vec(0u64..1000, 1..50)) {
        #[derive(Default)]
        struct W {
            fired: Vec<(u64, usize)>,
        }
        let mut rt = Runtime::new(W::default(), 9);
        let expect = delays.clone();
        rt.spawn("driver", move |env: ProcEnv<W>| {
            env.with(|_, ctx| {
                for (i, &d) in expect.iter().enumerate() {
                    ctx.schedule_in(Dur::from_nanos(d), move |w: &mut W, ctx| {
                        w.fired.push((ctx.now().as_nanos(), i));
                    });
                }
            });
            // Wait until everything fired.
            let total = expect.len();
            env.block_on(move |w, ctx| {
                if w.fired.len() == total {
                    Some(())
                } else {
                    // Re-arm a wake after the last deadline.
                    ctx.schedule_in(Dur::from_micros(2), {
                        let id = simcore::ProcId(0);
                        move |_w: &mut W, ctx| ctx.wake(id)
                    });
                    None
                }
            });
        });
        let out = rt.run();
        let fired = out.world.fired;
        // Times must be non-decreasing; ties must fire in insertion order.
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broken against insertion order");
            }
        }
        // Each event fired at its scheduled time.
        for &(at, i) in &fired {
            prop_assert_eq!(at, delays[i]);
        }
    }

    /// Sleeping processes wake exactly at their deadline, and the runtime's
    /// final time is the maximum across processes.
    #[test]
    fn sleep_deadlines_are_exact(durs in prop::collection::vec(1u64..10_000, 1..8)) {
        struct W {
            ends: Vec<(usize, u64)>,
        }
        let mut rt = Runtime::new(W { ends: Vec::new() }, 10);
        for (i, &d) in durs.iter().enumerate() {
            rt.spawn(format!("p{i}"), move |env: ProcEnv<W>| {
                env.sleep(Dur::from_nanos(d));
                let t = env.now().as_nanos();
                env.with(move |w, _| w.ends.push((i, t)));
            });
        }
        let out = rt.run();
        for &(i, t) in &out.world.ends {
            prop_assert_eq!(t, durs[i]);
        }
        prop_assert_eq!(out.sim_time, SimTime::from_nanos(*durs.iter().max().unwrap()));
    }

    /// The runtime is deterministic under arbitrary interleavings of
    /// sleeping and world-mutating processes.
    #[test]
    fn runtime_determinism(steps in prop::collection::vec((0u64..200, 0u8..4), 1..20)) {
        fn once(steps: &[(u64, u8)]) -> Vec<u32> {
            #[derive(Default)]
            struct W {
                log: Vec<u32>,
            }
            let mut rt = Runtime::new(W::default(), 11);
            for p in 0..3usize {
                let steps: Vec<_> = steps.to_vec();
                rt.spawn(format!("p{p}"), move |env: ProcEnv<W>| {
                    for (i, &(d, kind)) in steps.iter().enumerate() {
                        if (i + p) % 2 == 0 {
                            env.sleep(Dur::from_nanos(d * (p as u64 + 1)));
                        }
                        let tag = (p as u32) << 16 | (i as u32) << 2 | kind as u32;
                        env.with(move |w, _| w.log.push(tag));
                    }
                });
            }
            rt.run().world.log
        }
        prop_assert_eq!(once(&steps), once(&steps));
    }
}
