//! Property tests for the simulation core: event ordering, determinism,
//! and runtime scheduling invariants.

use proptest::prelude::*;
use simcore::{Dur, ProcEnv, Runtime, SimTime};

proptest! {
    /// Events always fire in (time, insertion) order, regardless of the
    /// insertion order of their deadlines.
    #[test]
    fn event_order_is_total(delays in prop::collection::vec(0u64..1000, 1..50)) {
        #[derive(Default)]
        struct W {
            fired: Vec<(u64, usize)>,
        }
        let mut rt = Runtime::new(W::default(), 9);
        let expect = delays.clone();
        rt.spawn("driver", move |env: ProcEnv<W>| {
            env.with(|_, ctx| {
                for (i, &d) in expect.iter().enumerate() {
                    ctx.schedule_in(Dur::from_nanos(d), move |w: &mut W, ctx| {
                        w.fired.push((ctx.now().as_nanos(), i));
                    });
                }
            });
            // Wait until everything fired.
            let total = expect.len();
            env.block_on(move |w, ctx| {
                if w.fired.len() == total {
                    Some(())
                } else {
                    // Re-arm a wake after the last deadline.
                    ctx.schedule_in(Dur::from_micros(2), {
                        let id = simcore::ProcId(0);
                        move |_w: &mut W, ctx| ctx.wake(id)
                    });
                    None
                }
            });
        });
        let out = rt.run();
        let fired = out.world.fired;
        // Times must be non-decreasing; ties must fire in insertion order.
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broken against insertion order");
            }
        }
        // Each event fired at its scheduled time.
        for &(at, i) in &fired {
            prop_assert_eq!(at, delays[i]);
        }
    }

    /// Sleeping processes wake exactly at their deadline, and the runtime's
    /// final time is the maximum across processes.
    #[test]
    fn sleep_deadlines_are_exact(durs in prop::collection::vec(1u64..10_000, 1..8)) {
        struct W {
            ends: Vec<(usize, u64)>,
        }
        let mut rt = Runtime::new(W { ends: Vec::new() }, 10);
        for (i, &d) in durs.iter().enumerate() {
            rt.spawn(format!("p{i}"), move |env: ProcEnv<W>| {
                env.sleep(Dur::from_nanos(d));
                let t = env.now().as_nanos();
                env.with(move |w, _| w.ends.push((i, t)));
            });
        }
        let out = rt.run();
        for &(i, t) in &out.world.ends {
            prop_assert_eq!(t, durs[i]);
        }
        prop_assert_eq!(out.sim_time, SimTime::from_nanos(*durs.iter().max().unwrap()));
    }

    /// The runtime is deterministic under arbitrary interleavings of
    /// sleeping and world-mutating processes.
    #[test]
    fn runtime_determinism(steps in prop::collection::vec((0u64..200, 0u8..4), 1..20)) {
        fn once(steps: &[(u64, u8)]) -> Vec<u32> {
            #[derive(Default)]
            struct W {
                log: Vec<u32>,
            }
            let mut rt = Runtime::new(W::default(), 11);
            for p in 0..3usize {
                let steps: Vec<_> = steps.to_vec();
                rt.spawn(format!("p{p}"), move |env: ProcEnv<W>| {
                    for (i, &(d, kind)) in steps.iter().enumerate() {
                        if (i + p) % 2 == 0 {
                            env.sleep(Dur::from_nanos(d * (p as u64 + 1)));
                        }
                        let tag = (p as u32) << 16 | (i as u32) << 2 | kind as u32;
                        env.with(move |w, _| w.log.push(tag));
                    }
                });
            }
            rt.run().world.log
        }
        prop_assert_eq!(once(&steps), once(&steps));
    }
}

/// One randomized timer in the wheel-vs-heap equivalence test: a delay that
/// may land in a wheel bucket (with forced ties), near the horizon boundary,
/// or far beyond it (heap), plus an optional cancellation — immediate or
/// scheduled from a separate canceller event.
#[derive(Debug, Clone, Copy)]
enum Cancel {
    Keep,
    Immediate,
    /// Cancel from an event fired at this delay (no-op if the target
    /// already fired, exactly like the real API).
    At(u64),
}

fn timer_op() -> impl Strategy<Value = (u64, Cancel)> {
    use simcore::sched::{WHEEL2_GRAIN_NS, WHEEL2_HORIZON_NS, WHEEL_GRAIN_NS, WHEEL_HORIZON_NS};
    let delay = prop_oneof![
        // Same-bucket and same-instant collisions inside the L1 wheel.
        (0u64..48).prop_map(|x| x * (WHEEL_GRAIN_NS / 2)),
        // Anywhere inside the L1 horizon.
        0u64..WHEEL_HORIZON_NS,
        // Straddling the L1 boundary and beyond it (second-level wheel).
        (WHEEL_HORIZON_NS - 2 * WHEEL_GRAIN_NS)..(4 * WHEEL_HORIZON_NS),
        // Straddling the L2 boundary and far beyond it (heap fallback).
        (WHEEL2_HORIZON_NS - 2 * WHEEL2_GRAIN_NS)..(2 * WHEEL2_HORIZON_NS),
    ];
    let cancel = prop_oneof![
        Just(Cancel::Keep),
        Just(Cancel::Keep),
        Just(Cancel::Keep),
        Just(Cancel::Immediate),
        (0u64..2 * WHEEL_HORIZON_NS).prop_map(Cancel::At),
    ];
    (delay, cancel)
}

proptest! {
    /// The hierarchical wheel + heap queue fires exactly what a plain
    /// `BinaryHeap<(time, seq)>` model says it should, in exactly that
    /// order, under random scheduling and cancellation on both sides of the
    /// wheel horizon — scheduled from a random, usually non-grain-aligned
    /// `now` (regression: near-horizon delays from an unaligned `now` used
    /// to wrap into the scan-start bucket and fire early). Cancelled timers
    /// never fire; cancelling an already-fired timer is a no-op.
    #[test]
    fn wheel_fires_like_a_binary_heap(
        base in 0u64..2 * simcore::sched::WHEEL_GRAIN_NS,
        ops in prop::collection::vec(timer_op(), 1..60),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Model: timer i gets seq i; canceller k (in op order) gets seq
        // n + k. A cancel is effective iff the canceller's (time, seq)
        // orders before its target's — with seq_c >= n > i, that reduces to
        // a strictly earlier timestamp.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for (i, &(d, c)) in ops.iter().enumerate() {
            let dead = match c {
                Cancel::Immediate => true,
                Cancel::At(tc) => tc < d,
                Cancel::Keep => false,
            };
            if !dead {
                heap.push(Reverse((d, i)));
            }
        }
        let mut expected = Vec::new();
        while let Some(Reverse((at, i))) = heap.pop() {
            expected.push((base + at, i));
        }

        struct W {
            fired: Vec<(u64, usize)>,
            ids: Vec<simcore::TimerId>,
        }
        let mut rt = Runtime::new(W { fired: Vec::new(), ids: Vec::new() }, 11);
        let plan = ops.clone();
        rt.spawn("sched", move |env: ProcEnv<W>| {
            // Land on an arbitrary (usually non-grain-aligned) `now` first:
            // the wheel wrap regression only reproduces when `now` does not
            // sit on a bucket boundary.
            env.sleep(Dur::from_nanos(base));
            env.with(|w, ctx| {
                // Targets first: seqs 0..n in op order.
                for (i, &(d, _)) in plan.iter().enumerate() {
                    let id = ctx.schedule_in(Dur::from_nanos(d), move |w: &mut W, ctx| {
                        w.fired.push((ctx.now().as_nanos(), i));
                    });
                    w.ids.push(id);
                }
                // Then cancellers (seqs n..) and immediate cancels.
                for (i, &(_, c)) in plan.iter().enumerate() {
                    match c {
                        Cancel::Keep => {}
                        Cancel::Immediate => ctx.cancel(w.ids[i]),
                        Cancel::At(tc) => {
                            ctx.schedule_in(Dur::from_nanos(tc), move |w: &mut W, ctx| {
                                ctx.cancel(w.ids[i]);
                            });
                        }
                    }
                }
            });
            // Outlive every timer and canceller.
            env.sleep(Dur::from_nanos(3 * simcore::sched::WHEEL2_HORIZON_NS));
        });
        let out = rt.run();
        prop_assert_eq!(out.world.fired, expected);
    }
}

// ---------------------------------------------------------------------------
// Batched rearm vs the open-coded cancel + schedule it replaces
// ---------------------------------------------------------------------------

proptest! {
    /// `reschedule_in(Some(id), d, f)` is observably identical to the
    /// two-call `cancel_counted(id); schedule_in(d, f)` pattern it batches:
    /// same live-fire sequence, same `events` total (ghosts included), same
    /// final simulated time — over arbitrary rearm storms, including rearms
    /// that land after the target already fired (stale-id no-ops).
    #[test]
    fn batched_rearm_matches_cancel_then_schedule(
        plan in prop::collection::vec((1u64..5_000, 1u64..5_000), 1..24)
    ) {
        #[derive(Default)]
        struct W {
            fired: Vec<u64>,
            pending: Option<simcore::TimerId>,
        }
        fn target_fire(w: &mut W, ctx: &mut simcore::Ctx<W>) {
            w.fired.push(ctx.now().as_nanos());
            w.pending = None;
        }
        fn run(plan: &[(u64, u64)], batched: bool) -> (Vec<u64>, u64, u64) {
            let plan = plan.to_vec();
            let mut rt = Runtime::new(W::default(), 7);
            rt.spawn("driver", move |env: ProcEnv<W>| {
                env.with(|w, ctx| {
                    w.pending = Some(ctx.schedule_in(Dur::from_nanos(500), target_fire));
                    // Rearm events at cumulative offsets; each retires the
                    // pending target (if still live) and arms a fresh one.
                    let mut t = 0u64;
                    for &(gap, delay) in &plan {
                        t += gap;
                        ctx.schedule_in(Dur::from_nanos(t), move |w: &mut W, ctx| {
                            let prev = w.pending.take();
                            let id = if batched {
                                ctx.reschedule_in(prev, Dur::from_nanos(delay), target_fire)
                            } else {
                                if let Some(p) = prev {
                                    ctx.cancel_counted(p);
                                }
                                ctx.schedule_in(Dur::from_nanos(delay), target_fire)
                            };
                            w.pending = Some(id);
                        });
                    }
                });
                // Outlive the last possible rearm target.
                env.sleep(Dur::from_nanos(plan.iter().map(|&(g, _)| g).sum::<u64>() + 10_000));
            });
            let out = rt.run();
            (out.world.fired, out.events, out.sim_time.as_nanos())
        }
        let a = run(&plan, true);
        let b = run(&plan, false);
        prop_assert_eq!(a, b);
    }
}
