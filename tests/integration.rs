//! Cross-crate integration tests: full simulated-cluster MPI runs spanning
//! `simcore` → `netsim` → `transport` → `mpi-core` → `workloads`.

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg, ReduceOp, ANY_SOURCE, ANY_TAG};
use simcore::Dur;
use workloads::farm::{run, run_with_fault, FarmCfg};
use workloads::nas::{self, Class, Kernel};
use workloads::pingpong::{self, PingPongCfg};

fn pattern(len: usize, tag: u8) -> Bytes {
    Bytes::from((0..len).map(|i| (i as u8).wrapping_mul(7).wrapping_add(tag)).collect::<Vec<u8>>())
}

#[test]
fn message_storm_integrity_under_loss_both_transports() {
    // Every rank sends a mixed bag of short/long messages on several tags
    // to every other rank under 1% loss; receivers verify byte-exact
    // content and per-(src, tag) ordering.
    for cfg in [MpiCfg::tcp(6, 0.01).with_seed(21), MpiCfg::sctp(6, 0.01).with_seed(21)] {
        let r = mpirun(cfg, |mpi| {
            let me = mpi.rank();
            let n = mpi.size();
            let per_pair = 6u8;
            let mut sends = Vec::new();
            for dst in 0..n {
                if dst == me {
                    continue;
                }
                for i in 0..per_pair {
                    let tag = (i % 3) as i32;
                    let len = if i % 2 == 0 { 3000 } else { 80_000 };
                    sends.push(mpi.isend(dst, tag, pattern(len, me as u8 ^ (i << 2))));
                }
            }
            // Receive everything, tracking per-(src, tag) sequence: the
            // idx-th arrival on (src, tag) must be the sender's message
            // i = tag + 3*idx (MPI non-overtaking per TRC).
            let mut per_tag_count = vec![[0u8; 3]; n as usize];
            let total = (n - 1) as usize * per_pair as usize;
            for _ in 0..total {
                let (st, msg) = mpi.recv(ANY_SOURCE, ANY_TAG);
                let src = st.src as usize;
                let tag = st.tag as usize;
                let idx = per_tag_count[src][tag];
                per_tag_count[src][tag] += 1;
                let i = tag as u8 + 3 * idx;
                let len = if i.is_multiple_of(2) { 3000 } else { 80_000 };
                assert_eq!(msg.len, len, "wrong size for src {src} tag {tag}");
                assert_eq!(
                    msg.to_vec(),
                    &pattern(len, st.src as u8 ^ (i << 2))[..],
                    "corruption from src {src} tag {tag}"
                );
            }
            mpi.waitall(&sends);
        });
        assert!(r.net.drops_loss > 0);
    }
}

#[test]
fn transports_agree_on_results() {
    // The same allreduce program must produce identical numeric results on
    // both transports (only timing differs).
    fn run_sum(cfg: MpiCfg) -> Vec<f64> {
        let out = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let o2 = out.clone();
        mpirun(cfg, move |mpi| {
            let v = [mpi.rank() as f64, (mpi.rank() as f64).powi(2)];
            let r = mpi.allreduce(ReduceOp::Sum, &v);
            if mpi.rank() == 0 {
                *o2.lock().unwrap() = r;
            }
        });
        let v = out.lock().unwrap().clone();
        v
    }
    let a = run_sum(MpiCfg::tcp(8, 0.0));
    let b = run_sum(MpiCfg::sctp(8, 0.0));
    assert_eq!(a, b);
    assert_eq!(a, vec![28.0, 140.0]);
}

#[test]
fn fig8_shape_holds_in_miniature() {
    // TCP ahead for small messages, SCTP ahead for large — the crossover
    // exists and sits between 4K and 128K.
    let small = 4 * 1024;
    let large = 128 * 1024;
    let t = |cfg: MpiCfg, size| pingpong::run(cfg, PingPongCfg { size, iters: 30 }).throughput;
    let norm_small = t(MpiCfg::sctp(2, 0.0), small) / t(MpiCfg::tcp(2, 0.0), small);
    let norm_large = t(MpiCfg::sctp(2, 0.0), large) / t(MpiCfg::tcp(2, 0.0), large);
    assert!(norm_small < 1.0, "TCP must win at 4K (got {norm_small})");
    assert!(norm_large > 1.0, "SCTP must win at 128K (got {norm_large})");
}

#[test]
fn sctp_beats_tcp_in_lossy_farm() {
    // The headline: under loss the farm finishes sooner on SCTP than on
    // the era-faithful TCP stack.
    let cfg = FarmCfg::small(30 * 1024, 10);
    let sctp = run(MpiCfg::sctp(8, 0.02).with_seed(33), cfg);
    let tcp_era = run(MpiCfg::tcp_era(8, 0.02).with_seed(33), cfg);
    assert_eq!(sctp.tasks_done, 200);
    assert_eq!(tcp_era.tasks_done, 200);
    assert!(
        tcp_era.secs > sctp.secs,
        "era TCP ({}) should trail SCTP ({}) at 2% loss",
        tcp_era.secs,
        sctp.secs
    );
}

#[test]
fn single_stream_sctp_shows_hol_blocking() {
    // Figure 12's isolation: at 2% loss the 10-stream farm beats the
    // 1-stream farm. Loss patterns are noisy at small task counts, so
    // aggregate several seeds of a medium-sized farm and allow slack; the
    // paper-scale run (fig12) shows the clean 1.34x.
    let cfg = FarmCfg { num_tasks: 600, ..FarmCfg::small(30 * 1024, 10) };
    let total = |mk: fn(u16, f64) -> MpiCfg| -> f64 {
        (0..6).map(|s| run(mk(8, 0.02).with_seed(100 + s), cfg).secs).sum::<f64>()
    };
    let ten = total(MpiCfg::sctp);
    let one = total(MpiCfg::sctp_single_stream);
    assert!(
        one > ten * 0.9,
        "single-stream ({one:.2}s) should not beat 10 streams ({ten:.2}s) meaningfully"
    );
}

#[test]
fn nas_kernels_run_on_the_full_stack() {
    for k in [Kernel::CG, Kernel::MG] {
        let r = nas::run(MpiCfg::sctp(8, 0.0), k, Class::S);
        assert!(r.mops_per_sec > 0.0);
    }
}

#[test]
fn failover_completes_the_job() {
    let mut m = MpiCfg::sctp(8, 0.0).with_seed(11);
    m.sctp.num_paths = 3;
    m.sctp.heartbeat_interval = Some(Dur::from_secs(2));
    m.sctp.path_max_retrans = 2;
    let cfg = FarmCfg::small(30 * 1024, 10);
    let r = run_with_fault(m, cfg, Some(5));
    assert_eq!(r.tasks_done, 200);
    assert!(r.failovers >= 1, "the primary-path death must trigger failover");
}

#[test]
fn whole_runs_are_deterministic() {
    let go = || {
        let cfg = FarmCfg::small(30 * 1024, 10);
        run(MpiCfg::sctp(8, 0.01).with_seed(5), cfg).secs
    };
    assert_eq!(go(), go());
}

#[test]
fn compute_and_communication_overlap() {
    // A nonblocking receive posted before compute completes during the
    // compute — total time ≈ max(compute, comm), not the sum.
    let r = mpirun(MpiCfg::sctp(2, 0.0), |mpi| match mpi.rank() {
        0 => {
            let r = mpi.irecv(Some(1), Some(0));
            mpi.compute(Dur::from_millis(100));
            let t0 = mpi.now();
            let _ = mpi.wait(r);
            let waited = mpi.now().since(t0);
            assert!(
                waited < Dur::from_millis(10),
                "message should have arrived during compute (waited {waited})"
            );
        }
        1 => mpi.send(0, 0, Bytes::from(vec![0u8; 50_000])),
        _ => {}
    });
    assert!(r.secs() < 0.2);
}
