//! Bulk Processor Farm demo (the paper's §4.2 workload): one manager,
//! seven workers, tasks tagged by type. Runs a scaled-down farm on both
//! transports at increasing loss rates and prints total run times — the
//! shape of Figures 10–11.
//!
//! ```text
//! cargo run --release --example farm_demo
//! ```

use mpi_core::MpiCfg;
use workloads::farm::{run, FarmCfg};

fn main() {
    let cfg = FarmCfg::small(30 * 1024, 10); // 200 short tasks, fanout 10
    println!("Bulk Processor Farm: {} tasks x {} B, fanout {}", cfg.num_tasks, cfg.task_bytes, cfg.fanout);
    println!("{:<8} {:>6} {:>10} {:>10}", "loss", "", "TCP (s)", "SCTP (s)");
    for loss in [0.0, 0.01, 0.02] {
        let tcp = run(MpiCfg::tcp(8, loss).with_seed(42), cfg);
        let sctp = run(MpiCfg::sctp(8, loss).with_seed(42), cfg);
        assert_eq!(tcp.tasks_done, cfg.num_tasks);
        assert_eq!(sctp.tasks_done, cfg.num_tasks);
        println!(
            "{:<8} {:>6} {:>10.2} {:>10.2}",
            format!("{:.0}%", loss * 100.0),
            "",
            tcp.secs,
            sctp.secs
        );
    }
    println!("\nUnder loss, SCTP's streams keep unrelated tasks flowing while");
    println!("TCP stalls everything behind each lost segment (head-of-line).");
}
