//! SCTP multihoming failover (the paper's §3.5.1): a long transfer between
//! two multihomed hosts survives the primary network dying mid-run — data
//! transparently moves to an alternate path. The same failure kills the
//! single-homed TCP run's progress until the network returns.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg};
use simcore::Dur;

fn main() {
    let mut cfg = MpiCfg::sctp(2, 0.0);
    cfg.sctp.num_paths = 3; // the testbed's three independent networks
    cfg.sctp.heartbeat_interval = Some(Dur::from_secs(2));
    cfg.sctp.path_max_retrans = 2; // fail over quickly (tunable, §3.5.1)

    let n_msgs = 30u32;
    let size = 100 * 1024;

    let report = mpirun(cfg, move |mpi| match mpi.rank() {
        0 => {
            for i in 0..n_msgs {
                if i == 5 {
                    println!("[{:.3}s] killing network 0 (the primary path)", mpi.now().as_secs_f64());
                    mpi.with_world(|w| w.net.set_network_up(0, false));
                }
                mpi.send(1, 0, Bytes::from(vec![i as u8; size]));
            }
        }
        1 => {
            for i in 0..n_msgs {
                let (_, msg) = mpi.recv(Some(0), Some(0));
                assert_eq!(msg.len, size);
                assert_eq!(msg.to_vec()[0], i as u8, "ordered across failover");
            }
            println!("[{:.3}s] receiver: all {} messages intact and in order", mpi.now().as_secs_f64(), n_msgs);
        }
        _ => {}
    });
    println!("run completed in {:.3}s with {} failover(s)", report.secs(), report.sctp.failovers);
    println!("(failover cost = a few retransmission timeouts; then full speed on path 1)");
}
