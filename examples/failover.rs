//! SCTP multihoming failover, two ways.
//!
//! **Part 1 — the paper's §3.5.1:** a long transfer between two multihomed
//! hosts survives the primary network dying mid-run — data transparently
//! moves to an alternate path. The same failure kills a single-homed run's
//! progress until the network returns.
//!
//! **Part 2 — a scripted link flap (the fault plane):** instead of killing
//! the network from inside the workload, we install a [`netsim::FaultPlan`]
//! that takes every host's primary interface down for a fixed window, and
//! walk through *how long failure detection takes* and what it costs:
//!
//! * SCTP declares a path failed after `path_max_retrans` consecutive T3
//!   retransmission timeouts on it (RFC 4960 §8.2), so detection latency is
//!   roughly the sum of the first `pmr + 1` backed-off RTOs — seconds, not
//!   microseconds, and tunable.
//! * A 3-path association then just *moves*: the transfer finishes on an
//!   alternate path long before the primary returns.
//! * A 1-path association has nowhere to go: it keeps backing off until the
//!   link comes back, so its makespan is pinned by the flap window, not by
//!   the data.
//!
//! The same plan + seed replays byte-identically; the `flap` bench binary
//! runs the full version of this experiment (farm workload, heartbeat ×
//! path-max-retrans sweep) and `TRACE=1` captures the flap edges for
//! `analyze`.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg, MpiReport};
use netsim::{FaultPlan, FlapRule, Scope};
use simcore::Dur;

const N_MSGS: u32 = 30;
const SIZE: usize = 100 * 1024;

/// The transfer both parts run: rank 0 streams `N_MSGS` × `SIZE` bytes to
/// rank 1, which checks every message arrives intact and in order.
fn transfer(cfg: MpiCfg, kill_primary_at_msg: Option<u32>) -> MpiReport {
    mpirun(cfg, move |mpi| match mpi.rank() {
        0 => {
            for i in 0..N_MSGS {
                if Some(i) == kill_primary_at_msg {
                    println!(
                        "[{:.3}s] killing network 0 (the primary path)",
                        mpi.now().as_secs_f64()
                    );
                    mpi.with_world(|w| w.net.set_network_up(0, false));
                }
                mpi.send(1, 0, Bytes::from(vec![i as u8; SIZE]));
            }
        }
        1 => {
            for i in 0..N_MSGS {
                let (_, msg) = mpi.recv(Some(0), Some(0));
                assert_eq!(msg.len, SIZE);
                assert_eq!(msg.to_vec()[0], i as u8, "ordered across failover");
            }
            println!(
                "[{:.3}s] receiver: all {} messages intact and in order",
                mpi.now().as_secs_f64(),
                N_MSGS
            );
        }
        _ => {}
    })
}

/// 3 paths, aggressive failure detection — the configuration both parts use.
fn multihomed_cfg() -> MpiCfg {
    let mut cfg = MpiCfg::sctp(2, 0.0);
    cfg.sctp.num_paths = 3; // the testbed's three independent networks
    cfg.sctp.heartbeat_interval = Some(Dur::from_secs(2));
    cfg.sctp.path_max_retrans = 2; // fail over quickly (tunable, §3.5.1)
    cfg
}

fn main() {
    // ── Part 1: ad-hoc kill from inside the workload (§3.5.1) ──────────
    println!("== part 1: primary network dies mid-run (never returns) ==");
    let report = transfer(multihomed_cfg(), Some(5));
    println!(
        "run completed in {:.3}s with {} failover(s)",
        report.secs(),
        report.sctp.failovers
    );
    println!("(failover cost = a few retransmission timeouts; then full speed on path 1)\n");

    // ── Part 2: a scripted flap via the fault plane ────────────────────
    // The plan is data, not workload code: primary interface (iface 0 on
    // every host) down from 5 ms to 2 s, then back up. Installed through
    // `MpiCfg::fault_plan`, it drives `LinkDrop::LinkDown` inside netsim —
    // the transport sees exactly what it would see from a real dead link.
    // The window has to outlast detection *and* the retransmission tail:
    // with `path_max_retrans = 2` the sender declares the path dead after
    // ~3 consecutive backed-off T3/heartbeat failures (≈1.5 s here), and
    // chunks already outstanding on the dead path still wait out their
    // backed-off T3 before being retried on the new primary — a flap
    // shorter than that is just a stall, never a demonstrated failover.
    let flap_from = Dur::from_millis(5);
    let flap_until = Dur::from_secs(8);
    let plan = FaultPlan {
        flaps: vec![FlapRule {
            scope: Scope::on_iface(0),
            from_ns: flap_from.as_nanos(),
            until_ns: flap_until.as_nanos(),
        }],
        ..FaultPlan::default()
    };
    println!(
        "== part 2: scripted flap — iface 0 down {:.0} ms .. {:.0} ms ==",
        flap_from.as_secs_f64() * 1e3,
        flap_until.as_secs_f64() * 1e3
    );
    println!("plan (replayable via FaultPlan::from_json): {}", plan.to_json());

    // 2a: multihomed. The transfer stalls when the flap hits, eats
    // `path_max_retrans + 1` backed-off T3/heartbeat failures on the dead
    // path, fails over, drains the stalled chunks onto an alternate
    // network at their next T3, and finishes — while the primary is still
    // down.
    let mut cfg = multihomed_cfg();
    cfg.sctp.heartbeat_interval = Some(Dur::from_millis(500)); // probe the dead path often
    cfg.fault_plan = plan.clone();
    let multi = transfer(cfg, None);
    let detect_ms =
        multi.sctp.first_failover_ns.saturating_sub(flap_from.as_nanos()) as f64 / 1e6;
    println!(
        "3-path: {:.3}s total, {} failover(s), dead path detected {:.0} ms after the flap",
        multi.secs(),
        multi.sctp.failovers,
        detect_ms
    );
    assert!(multi.sctp.failovers >= 1, "the flap must force a failover");
    assert!(
        multi.secs() < flap_until.as_secs_f64(),
        "3-path must finish while the primary is still down"
    );

    // 2b: single-homed. Same flap, nowhere to fail over to: the sender
    // backs off until the link returns at 2 s, so the makespan is the flap
    // window plus the tail of the last backoff, not the 30 messages.
    let mut cfg = MpiCfg::sctp(2, 0.0);
    cfg.sctp.num_paths = 1;
    cfg.fault_plan = plan;
    let single = transfer(cfg, None);
    println!(
        "1-path: {:.3}s total, {} failover(s) — pinned by the flap window, not the data",
        single.secs(),
        single.sctp.failovers
    );
    assert!(
        single.secs() >= flap_until.as_secs_f64(),
        "1-path cannot finish before the link returns"
    );

    println!("\ndetection latency ≈ the first pmr+1 backed-off RTOs (RFC 4960 §8.2/§8.3);");
    println!(
        "sweep heartbeat_interval × path_max_retrans with: \
         cargo run --release -p bench-harness --bin flap"
    );
}
