//! Head-of-line blocking, isolated (the paper's Figure 4): two messages on
//! different tags; the first is lost in transit. Under SCTP the second
//! message — on its own stream — is delivered immediately; its sibling
//! arrives ~1 RTO later. Under TCP both wait for the retransmission.
//!
//! ```text
//! cargo run --release --example multistream_hol
//! ```

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg};
use simcore::Dur;

fn scenario(name: &str, cfg: MpiCfg) {
    println!("--- {name} ---");
    let report = mpirun(cfg, |mpi| {
        match mpi.rank() {
            1 => {
                // Sender: Msg-A (tag 100) is doomed — we flip the network
                // to 100% loss around its flight, then restore and send
                // Msg-B (tag 200).
                mpi.with_world(|w| w.net.set_loss(1.0));
                let a = mpi.isend(0, 101, Bytes::from(vec![0xAA; 1024]));
                mpi.compute(Dur::from_millis(1));
                mpi.with_world(|w| w.net.set_loss(0.0));
                let b = mpi.isend(0, 205, Bytes::from(vec![0xBB; 1024]));
                mpi.waitall(&[a, b]);
            }
            0 => {
                // Receiver: posts both receives, does not care about order.
                let ra = mpi.irecv(Some(1), Some(101));
                let rb = mpi.irecv(Some(1), Some(205));
                let (first, st, _) = mpi.waitany(&[ra, rb]);
                println!(
                    "  first arrival: tag {} at t={:.3}s",
                    st.tag,
                    mpi.now().as_secs_f64()
                );
                let other = if first == 0 { rb } else { ra };
                let (st2, _) = mpi.wait(other);
                println!(
                    "  second arrival: tag {} at t={:.3}s",
                    st2.tag,
                    mpi.now().as_secs_f64()
                );
            }
            _ => {}
        }
    });
    println!("  total: {:.3}s (drops={}, rtx: tcp={} sctp={})", report.secs(), report.net.drops_loss, report.tcp.retransmits, report.sctp.retransmits);
}

fn main() {
    // TCP: the lost Msg-A blocks Msg-B inside the byte stream.
    scenario("LAM-TCP: tag-205 waits behind the lost tag-101", MpiCfg::tcp(2, 0.0));
    // SCTP: tag-205 rides its own stream and arrives first.
    scenario("LAM-SCTP: tag-205 overtakes the lost tag-101", MpiCfg::sctp(2, 0.0));
}
