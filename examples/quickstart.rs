//! Quickstart: run a 2-rank MPI ping-pong over both transports on the
//! simulated cluster and print the measured throughput.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use mpi_core::{mpirun, MpiCfg};

fn main() {
    let size = 64 * 1024; // 64 KB messages (above the ~22 KB crossover)
    let iters = 400;

    for (name, cfg) in [
        ("LAM-TCP ", MpiCfg::tcp(2, 0.0)),
        ("LAM-SCTP", MpiCfg::sctp(2, 0.0)),
    ] {
        let report = mpirun(cfg, move |mpi| {
            let payload = Bytes::from(vec![0u8; size]);
            match mpi.rank() {
                0 => {
                    for _ in 0..iters {
                        mpi.send(1, 0, payload.clone());
                        let (_, msg) = mpi.recv(Some(1), Some(0));
                        assert_eq!(msg.len, size);
                    }
                }
                1 => {
                    for _ in 0..iters {
                        let (_, msg) = mpi.recv(Some(0), Some(0));
                        mpi.send(0, 0, Bytes::from(msg.to_vec()));
                    }
                }
                _ => unreachable!(),
            }
        });
        let tput = (size * iters) as f64 / report.secs();
        println!(
            "{name}: {iters} x {size} B round trips in {:.3} s  ->  {:.1} MB/s one-way",
            report.secs(),
            tput / 1e6
        );
    }
    println!("\n(SCTP wins above the ~22 KB crossover; try changing `size`.)");
}
