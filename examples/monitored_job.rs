//! The §3.5.3 environment: LAM-style daemons, converted from UDP to SCTP,
//! boot a star overlay, watch an MPI job run, and halt when it completes.
//!
//! ```text
//! cargo run --release --example monitored_job
//! ```

use bytes::Bytes;
use mpi_core::{mpirun_monitored, MpiCfg, ReduceOp};

fn main() {
    let n = 8;
    let (report, table) = mpirun_monitored(MpiCfg::sctp(n, 0.0), |mpi| {
        // A small job: a ring of messages plus a reduction.
        let next = (mpi.rank() + 1) % mpi.size();
        let prev = (mpi.rank() + mpi.size() - 1) % mpi.size();
        for i in 0..5 {
            let s = mpi.isend(next, i, Bytes::from(vec![0u8; 10_000]));
            let r = mpi.irecv(Some(prev), Some(i));
            mpi.waitall(&[s, r]);
        }
        let _ = mpi.allreduce(ReduceOp::Sum, &[mpi.rank() as f64]);
    });

    println!("job finished in {:.3}s (simulated); mpitask view:", report.secs());
    println!("{:>5} {:>5} {:>8} {:>6} {:>10}", "rank", "host", "started", "ended", "msgs sent");
    let mut ranks: Vec<_> = table.ranks.iter().collect();
    ranks.sort_by_key(|(r, _)| **r);
    for (r, e) in ranks {
        println!(
            "{:>5} {:>5} {:>8} {:>6} {:>10}",
            r, e.host, e.started, e.ended, e.last_msgs_sent
        );
    }
    println!("\n(the daemons and the job both ran over SCTP — §3.5.3's point)");
}
